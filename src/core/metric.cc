#include "core/metric.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cmath>
#include <limits>
#include <vector>

#include "core/dataset.h"
#include "core/screen.h"
#include "core/sparse_kernels.h"
#include "core/vector_kernels.h"
#include "util/check.h"
#include "util/thread_pool.h"

namespace diverse {

namespace {

// Rows per parallel range: aim for a fixed amount of coordinate work per
// range so dispatch overhead stays negligible at any dimension, with a floor
// that keeps ranges coarse for very high-dimensional rows. Range boundaries
// depend only on (n, grain), never on scheduling, so per-range reductions
// are deterministic at any thread count.
constexpr size_t kGrainOps = 16384;
constexpr size_t kMinGrainRows = 256;

size_t GrainRows(const Dataset& data) {
  size_t dim = std::max<size_t>(data.dim(), 1);
  return std::max(kMinGrainRows, kGrainOps / dim);
}

// out[i] = row_distance(data.row(begin + i)) for all i, in parallel.
template <typename RowFn>
void BatchMap(const Dataset& data, size_t begin, std::span<double> out,
              const RowFn& row_distance) {
  DIVERSE_CHECK_LE(begin + out.size(), data.size());
  GlobalThreadPool().ParallelForRanges(
      out.size(), GrainRows(data), [&](size_t lo, size_t hi) {
        for (size_t i = lo; i < hi; ++i) {
          out[i] = row_distance(data.row(begin + i));
        }
      });
}

// The fused relax-and-argmax sweep shared by all metrics. Each range
// records its first maximum; ranges combine in ascending order with a
// strict comparison, which reproduces the scalar loop's first-max-wins
// semantics exactly.
template <typename RowFn>
size_t BatchRelaxArgFarthest(const Dataset& data, std::span<double> dist,
                             std::span<size_t> assignment, size_t center_rank,
                             const RowFn& row_distance) {
  size_t n = data.size();
  DIVERSE_CHECK_EQ(dist.size(), n);
  if (!assignment.empty()) DIVERSE_CHECK_EQ(assignment.size(), n);
  if (n == 0) return 0;

  size_t grain = GrainRows(data);
  size_t num_ranges = (n + grain - 1) / grain;
  // SIZE_MAX marks ranges a single inline call subsumed (the pool runs the
  // whole sweep as one range when the work is small or it has one worker).
  std::vector<size_t> range_best(num_ranges, SIZE_MAX);
  GlobalThreadPool().ParallelForRanges(
      n, grain, [&](size_t lo, size_t hi) {
        size_t local_best = lo;
        double local_val = -std::numeric_limits<double>::infinity();
        for (size_t i = lo; i < hi; ++i) {
          double d = row_distance(data.row(i));
          if (d < dist[i]) {
            dist[i] = d;
            if (!assignment.empty()) assignment[i] = center_rank;
          }
          if (dist[i] > local_val) {
            local_val = dist[i];
            local_best = i;
          }
        }
        range_best[lo / grain] = local_best;
      });

  size_t best = range_best[0];
  DIVERSE_CHECK_LT(best, n);
  for (size_t r = 1; r < num_ranges; ++r) {
    size_t candidate = range_best[r];
    if (candidate == SIZE_MAX) continue;
    if (dist[candidate] > dist[best]) best = candidate;
  }
  return best;
}

kernels::VecView QueryView(const Point& query, const Dataset& data) {
  if (!data.empty()) DIVERSE_CHECK_EQ(query.dim(), data.dim());
  return query.View();
}

// --- Blocked many-vs-many tiles ------------------------------------------

void CheckTileArgs(const Dataset& queries, size_t q_begin, size_t nq,
                   const Dataset& data, size_t r_begin, size_t nr,
                   size_t out_stride) {
  DIVERSE_CHECK_LE(q_begin + nq, queries.size());
  DIVERSE_CHECK_LE(r_begin + nr, data.size());
  DIVERSE_CHECK_GE(out_stride, nr);
  if (nq > 0 && nr > 0) DIVERSE_CHECK_EQ(queries.dim(), data.dim());
}

// --- Sparse tile strategy selection ---------------------------------------
// The sparse engine decodes a block of sparse query lanes once
// (core/sparse_kernels.h) and streams every sparse data row a single time
// against all lanes. Whether that beats the per-pair scalar merge depends on
// the data layout, not the operation, so the decisions below read only the
// block content and the Dataset's sparse-row statistics — deterministic
// inputs, so tiled results never depend on scheduling. Either choice is
// bit-identical to the scalar merge; the strategy only moves cost.

// Minimum sparse data rows per tile for the block decode to amortize.
constexpr size_t kSparseEngineMinRows = 4;
// Largest ambient dimension for the direct-index slot table (the table is
// cleared per query block; beyond this the O(dim) clear and its cache
// footprint outweigh the O(1) probes).
constexpr size_t kDirectIndexMaxDim = size_t{1} << 14;

// Dimension to build the direct-index mirror for, or 0 for merge-walk
// probing. Only intersection kernels (dot, Jaccard) probe; union-walk
// kernels (Euclidean, L1) stream both index lists and never look up.
size_t DirectIndexDim(const Dataset& data, size_t nr) {
  size_t dim = data.dim();
  if (dim == 0 || dim > kDirectIndexMaxDim) return 0;
  // Amortize the per-block O(dim) clear over the rows that will probe it.
  if (dim > 64 * nr) return 0;
  return dim;
}

// Union-walk profitability for Euclidean/L1 sparse blocks. The engine
// streams (U + nnz_r) merged positions per row with a branch-free
// kTileLanes-wide accumulate each; the per-pair merge walks
// (total_lane_nnz + sparse_lanes * nnz_r) positions one lane at a time with
// data-dependent branching. Measured on the BM_SparseTileEuclidean*
// workloads, one branch-free 8-lane position costs about 0.7x a branchy
// single-lane merge position (the merge's unpredictable three-way branch
// dominates, not the arithmetic), giving the 8x admit factor below. Blocks
// whose lanes share support (text corpora — Zipf vocabularies overlap
// heavily) pass with a wide margin; only blocks whose widened union would
// do nearly an order of magnitude more positions than the per-pair merges
// fall back (e.g. a lone sparse lane among dense ones against short rows).
bool UnionWalkProfitable(size_t union_size, size_t total_lane_nnz,
                         size_t sparse_lanes, double avg_row_nnz,
                         double col_hits_per_row) {
  double engine = static_cast<double>(kernels::kTileLanes) *
                  (static_cast<double>(union_size) + avg_row_nnz);
  double per_pair = static_cast<double>(total_lane_nnz) +
                    static_cast<double>(sparse_lanes) * avg_row_nnz;
  // When the transposed column mirror is available, credit the engine for
  // expected index matches (matched positions advance both cursors at
  // once).
  engine -= static_cast<double>(kernels::kTileLanes) * col_hits_per_row;
  return engine <= 8.0 * per_pair;
}

// Expected per-row index matches between the decoded block union and the
// sparse data rows, from the optional transposed column-occupancy mirror
// (0.0 when the mirror is not built — the estimate is advisory only).
double ExpectedColumnHits(const Dataset& data,
                          const kernels::SparseTileScratch& ws) {
  const std::vector<uint32_t>* occ = data.column_occupancy();
  if (occ == nullptr || data.sparse_stats().rows == 0) return 0.0;
  uint64_t hits = 0;
  for (uint32_t idx : ws.indices) hits += (*occ)[idx];
  return static_cast<double>(hits) /
         static_cast<double>(data.sparse_stats().rows);
}

// --- Sparse query-block decode cache --------------------------------------
// PackSparseQueryLanes re-walks a query block's CSR lanes (and rebuilds the
// direct-index slot table) on every call, but the decoded scratch is
// read-only while data rows stream against it — so a thread that decodes
// the same block twice in a row does pure rework. That happens constantly
// in tiled sweeps (one query chunk against many row blocks) and in the
// cover-tree leaf path (one center against many leaf slabs). Each
// thread-local scratch slot therefore remembers what it holds: the owning
// dataset's content stamp (globally unique per mutation, so equal stamps
// imply identical content — see Dataset::content_stamp), the lane block's
// absolute row span, the sub-block index, and the direct-index dimension
// the decode was built for. A matching key skips the decode outright.
// Process-global relaxed counters prove the reuse in tests.

struct SparseDecodeKey {
  uint64_t stamp = 0;      // Dataset::content_stamp() of the query side
  size_t block_begin = 0;  // absolute first row of the lane block
  size_t block_n = 0;      // lanes in the block (its sparse subset derives)
  size_t sub = 0;          // sub-block index within the lane block
  size_t direct_dim = 0;   // direct-index dim the decode was built for
  friend bool operator==(const SparseDecodeKey&,
                         const SparseDecodeKey&) = default;
};

// Monotonic telemetry only (tests assert deltas after joining all workers)
// — relaxed ordering is sufficient because no other memory is published
// through these counters. The decode caches themselves are thread_local.
std::atomic<uint64_t> g_sparse_decode_count{0};
std::atomic<uint64_t> g_sparse_decode_hits{0};

// True (and counted as a hit) when `have` already holds `want`'s decode;
// otherwise records `want` into `have` and tells the caller to decode.
// Stamp 0 marks a never-mutated dataset (necessarily empty — no sparse
// lanes to decode) and never caches.
bool SparseDecodeCached(const SparseDecodeKey& want, SparseDecodeKey& have) {
  if (want.stamp != 0 && have == want) {
    g_sparse_decode_hits.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  g_sparse_decode_count.fetch_add(1, std::memory_order_relaxed);
  have = want;
  return false;
}

// Shared tile driver for the four concrete metrics, parameterized on the
// output scalar: Out = double is the exact engine (8 query lanes, the
// bit-identical lane kernels), Out = float the fp32 screening engine (16
// lanes, twice the width for the same vector registers). Keeping ONE
// driver keeps the strategy gates — dense/sparse lane partition, the
// sparse-engine admission (kSparseEngineMinRows), DirectIndexDim, and the
// union-walk profitability check — in lockstep by construction, which the
// screened-value determinism contract depends on (either gate verdict is
// value-identical; the gates only move cost).
//
// Queries are processed in lane blocks of TileTraits<Out>::kLanes, each
// split by representation:
//   * dense lanes are transposed once (TileTraits<Out>::Pack) and every
//     dense data row is streamed through the multi-query lane kernel
//     (`lanes`) — only when kHasDenseLanes (Jaccard has no dense lane
//     kernel);
//   * sparse lanes are decoded into per-thread SparseTileScratch blocks of
//     kernels::kTileLanes (one sub-block for the exact engine, up to two
//     for the 16-lane fp32 engine) and every sparse data row is streamed
//     through the sparse lane kernel (`sparse_lanes`);
//   * mixed pairs (dense lane x sparse row and vice versa) always run the
//     per-pair kernel (`pair`), which is already O(nnz).
// Each data row is fetched a single time and handed to every group.
// `finish_lanes` turns a block of lane accumulators into the metric's
// distances in place (batched SQRTPD/SQRTPS for Euclidean, the
// angular-cosine postprocess, nothing for L1/Jaccard); it runs for both
// the dense and the sparse group, over that group's compacted views.
// `sparse_union_walk` marks the union-walk kernels (Euclidean/L1), which
// are gated by UnionWalkProfitable and never build the direct index.

template <typename Out>
struct TileTraits;

template <>
struct TileTraits<double> {
  static constexpr size_t kLanes = kernels::kTileLanes;
  static void Pack(const kernels::VecView* queries, size_t nq, size_t dim,
                   float* qt) {
    kernels::PackQueryLanes(queries, nq, dim, qt);
  }
};

template <>
struct TileTraits<float> {
  static constexpr size_t kLanes = kernels::kTileLanesF32;
  static void Pack(const kernels::VecView* queries, size_t nq, size_t dim,
                   float* qt) {
    kernels::PackQueryLanesF32(queries, nq, dim, qt);
  }
};

template <bool kHasDenseLanes, typename Out, typename PairFn, typename LaneFn,
          typename SparseLanesFn, typename FinishLanesFn>
void BatchTileImpl(const Dataset& queries, size_t q_begin, size_t nq,
                   const Dataset& data, size_t r_begin, size_t nr, Out* out,
                   size_t out_stride, const PairFn& pair, const LaneFn& lanes,
                   const SparseLanesFn& sparse_lanes, bool sparse_union_walk,
                   const FinishLanesFn& finish_lanes) {
  CheckTileArgs(queries, q_begin, nq, data, r_begin, nr, out_stride);
  // Empty tiles are legal no-ops; bail before packing query lanes (the
  // lane pack walks data.dim() coordinates of each query, which is only
  // validated against the query dimension for nonempty tiles).
  if (nq == 0 || nr == 0) return;
  size_t dim = data.dim();
  constexpr size_t kQBlock = TileTraits<Out>::kLanes;
  constexpr size_t kSub = kernels::kTileLanes;  // sparse decode width
  constexpr size_t kMaxSub = (kQBlock + kSub - 1) / kSub;
  thread_local std::vector<float> qt;  // transposed dense lane block
  thread_local kernels::SparseTileScratch sparse_ws[kMaxSub];
  thread_local SparseDecodeKey sparse_key[kMaxSub];
  kernels::VecView dv[kQBlock];  // compacted dense lane views
  kernels::VecView sv[kQBlock];  // compacted sparse lane views
  size_t dense_id[kQBlock];
  size_t sparse_id[kQBlock];
  Out lane_out[kQBlock];
  const Dataset::SparseStats& stats = data.sparse_stats();
  for (size_t q0 = 0; q0 < nq; q0 += kQBlock) {
    size_t qn = std::min(kQBlock, nq - q0);
    size_t dn = 0, sn = 0;
    for (size_t lane = 0; lane < qn; ++lane) {
      kernels::VecView v = queries.row(q_begin + q0 + lane);
      if (v.is_sparse()) {
        sv[sn] = v;
        sparse_id[sn++] = lane;
      } else {
        dv[dn] = v;
        dense_id[dn++] = lane;
      }
    }
    bool dense_block = kHasDenseLanes && dim > 0 && dn > 0;
    if (dense_block) {
      qt.resize(dim * kQBlock);
      TileTraits<Out>::Pack(dv, dn, dim, qt.data());
    }
    bool sparse_block = sn > 0 && stats.rows > 0 && nr >= kSparseEngineMinRows;
    size_t num_sub = (sn + kSub - 1) / kSub;
    if (sparse_block) {
      size_t direct_dim = sparse_union_walk ? 0 : DirectIndexDim(data, nr);
      for (size_t sub = 0; sub < num_sub; ++sub) {
        size_t sub_n = std::min(kSub, sn - sub * kSub);
        SparseDecodeKey want{queries.content_stamp(), q_begin + q0, qn, sub,
                             direct_dim};
        if (!SparseDecodeCached(want, sparse_key[sub])) {
          kernels::PackSparseQueryLanes(sv + sub * kSub, sub_n, direct_dim,
                                        sparse_ws[sub]);
        }
        if (sparse_union_walk &&
            !UnionWalkProfitable(sparse_ws[sub].indices.size(),
                                 sparse_ws[sub].total_nnz, sub_n,
                                 stats.AvgNnz(),
                                 ExpectedColumnHits(data, sparse_ws[sub]))) {
          sparse_block = false;
          break;
        }
      }
    }
    for (size_t r = 0; r < nr; ++r) {
      kernels::VecView row = data.row(r_begin + r);
      if (!row.is_sparse()) {
        if (dense_block) {
          lanes(qt.data(), row.values, dim, lane_out);
          finish_lanes(lane_out, dv, row, dn);
          for (size_t i = 0; i < dn; ++i) {
            out[(q0 + dense_id[i]) * out_stride + r] = lane_out[i];
          }
        } else {
          for (size_t i = 0; i < dn; ++i) {
            out[(q0 + dense_id[i]) * out_stride + r] = pair(dv[i], row);
          }
        }
        for (size_t i = 0; i < sn; ++i) {
          out[(q0 + sparse_id[i]) * out_stride + r] = pair(sv[i], row);
        }
      } else {
        for (size_t i = 0; i < dn; ++i) {
          out[(q0 + dense_id[i]) * out_stride + r] = pair(dv[i], row);
        }
        if (sparse_block) {
          for (size_t sub = 0; sub < num_sub; ++sub) {
            size_t sub_n = std::min(kSub, sn - sub * kSub);
            sparse_lanes(sparse_ws[sub], row, lane_out);
            finish_lanes(lane_out, sv + sub * kSub, row, sub_n);
            for (size_t i = 0; i < sub_n; ++i) {
              out[(q0 + sparse_id[sub * kSub + i]) * out_stride + r] =
                  lane_out[i];
            }
          }
        } else {
          for (size_t i = 0; i < sn; ++i) {
            out[(q0 + sparse_id[i]) * out_stride + r] = pair(sv[i], row);
          }
        }
      }
    }
  }
}

// The exact tile engine (bit-identical to the scalar kernels).
template <bool kHasDenseLanes, typename PairFn, typename LaneFn,
          typename SparseLanesFn, typename FinishLanesFn>
void BatchTile(const Dataset& queries, size_t q_begin, size_t nq,
               const Dataset& data, size_t r_begin, size_t nr, double* out,
               size_t out_stride, const PairFn& pair, const LaneFn& lanes,
               const SparseLanesFn& sparse_lanes, bool sparse_union_walk,
               const FinishLanesFn& finish_lanes) {
  BatchTileImpl<kHasDenseLanes, double>(queries, q_begin, nq, data, r_begin,
                                        nr, out, out_stride, pair, lanes,
                                        sparse_lanes, sparse_union_walk,
                                        finish_lanes);
}

// The fp32 screening tile engine (certified bounds, no bit-exactness
// promise — see core/screen.h).
template <typename PairFn, typename LaneFn, typename SparseLanesFn,
          typename FinishLanesFn>
void BatchTileF32(const Dataset& queries, size_t q_begin, size_t nq,
                  const Dataset& data, size_t r_begin, size_t nr, float* out,
                  size_t out_stride, const PairFn& pair, const LaneFn& lanes,
                  const SparseLanesFn& sparse_lanes, bool sparse_union_walk,
                  const FinishLanesFn& finish_lanes) {
  BatchTileImpl<true, float>(queries, q_begin, nq, data, r_begin, nr, out,
                             out_stride, pair, lanes, sparse_lanes,
                             sparse_union_walk, finish_lanes);
}

// --- Certified screening bounds -------------------------------------------
// u = 2^-24, the fp32 unit roundoff. A sum of m nonnegative fp32 terms,
// each produced from exact float inputs by at most two rounded ops,
// satisfies |s32 - s| <= gamma(m+2) * s with gamma(n) = n*u / (1 - n*u),
// for ANY summation order (the sequential chain is the worst case, so the
// bound also covers the 8/16-accumulator orders the kernels actually use)
// — plus a per-op absolute floor of 2^-150 in the fp32 underflow regime.
// The exact path's own double-accumulation error is gamma_53-sized and
// vanishes inside the 2x safety factors below. Full derivations live in the
// README's "Mixed-precision screening" section and are property-tested
// against sampled |screened - exact| gaps in tests/screen_test.cc.

constexpr double kF32Eps = 5.9604644775390625e-08;  // 2^-24

struct ScreenSideStats {
  bool has_dense = false;
  size_t max_sparse_nnz = 0;
  double min_positive_norm = std::numeric_limits<double>::infinity();
};

ScreenSideStats SideStatsOf(const Dataset& d) {
  ScreenSideStats s;
  s.has_dense = d.has_dense_rows();
  s.max_sparse_nnz = d.sparse_stats().max_nnz;
  s.min_positive_norm = d.screen_stats().min_positive_norm;
  return s;
}

ScreenSideStats SideStatsOf(const Point& p) {
  ScreenSideStats s;
  s.has_dense = !p.is_sparse();
  s.max_sparse_nnz = p.is_sparse() ? p.sparse_values().size() : 0;
  if (p.norm() > 0.0) s.min_positive_norm = p.norm();
  return s;
}

// Worst-case fp32-accumulated term count for any pair drawn from the two
// sides: pairs with a dense operand walk all dim coordinates; sparse x
// sparse pairs walk at most the sum of the two supports.
size_t MaxPairTerms(const ScreenSideStats& q, const ScreenSideStats& r,
                    size_t dim) {
  size_t m = (q.has_dense || r.has_dense) ? dim : 0;
  m = std::max(m, q.max_sparse_nnz + r.max_sparse_nnz);
  return std::max<size_t>(m, 1);
}

// Euclidean / L1: relative bound (2m + 64) * u — more than twice the
// derived worst case of (m + 6) * u on the distance — plus an absolute
// floor that soaks the fp32 underflow regime (where both the screened and
// the exact value are below ~2^-61, far under the floor).
ScreenBound AdditiveBound(size_t m) {
  return ScreenBound{(2.0 * static_cast<double>(m) + 64.0) * kF32Eps, 1e-18};
}

// Cosine-space error band of the fp32 dot kernels:
// |dot32 - dot| <= gamma(m+1) * ||a|| ||b|| (Cauchy-Schwarz over the
// absolute terms, any summation order) gives an absolute error e_c on the
// cosine after the exact-double norm division (the fp32 narrowing of the
// quotient is another u, inside the 2x margin), inflated by the denormal
// floor over the smallest positive norm product. Zero-norm pairs take the
// exact convention values and carry no error at all. The cosine-space
// sparse screen (CosineSparseScreenedRelaxTile) compares in this band
// directly; CosineBound below turns it into an absolute angular band via
// the Hölder-type bound |acos x - acos y| <= sqrt(2|x-y|) + |x-y| (the
// endpoint increment acos(1 - e) is the maximum and is below sqrt(2e) + e
// for every e in [0, 2]), plus 1e-5 for kernels::AcosScreenPoly — the
// screened angular kernels evaluate the arccos with that polynomial.
double CosineSpaceError(size_t m, double min_norm_q, double min_norm_r) {
  double md = static_cast<double>(m);
  return (2.0 * md + 32.0) * kF32Eps +
         md * 3e-45 / (min_norm_q * min_norm_r);
}

ScreenBound CosineBound(size_t m, double min_norm_q, double min_norm_r) {
  double e_c = CosineSpaceError(m, min_norm_q, min_norm_r);
  double e_d = std::sqrt(2.0 * e_c) + e_c + 1e-5;
  return ScreenBound{0.0, std::min(e_d, 4.0)};
}

// --- Metric-index pruning slack -------------------------------------------
// The cover tree (core/cover_tree.h) prunes with chains of EXACT-double
// kernel values: d(q, center) - radius lower-bounds d(q, x) for any x in
// the node, d(q, center) + radius upper-bounds it. The exact kernels round,
// so each computed value carries the double analog of the fp32 screening
// band above — the same derivations with u = 2^-52 and the same >=2x safety
// factors. A pruning test chains at most three computed values (the pair
// bound, the center distance, and the radius, itself a computed pair
// distance), so the traversal widens by FOUR times this band before any
// comparison: sound for every chain it forms, and still orders of magnitude
// below the distances the tests discriminate on.

constexpr double kDblEps = 2.220446049250313e-16;  // 2^-52

ScreenBound AdditiveIndexSlack(size_t m) {
  // Euclidean / L1: (2m + 64) u relative — more than twice the (m + 6) u
  // worst case on the distance — plus a floor soaking double underflow.
  return ScreenBound{(2.0 * static_cast<double>(m) + 64.0) * kDblEps, 1e-30};
}

ScreenBound CosineIndexSlack(size_t m, double min_norm) {
  // Cosine-space band of the exact double dot (Cauchy-Schwarz over absolute
  // terms, any order) with a denormal floor over the smallest positive norm
  // product, lifted to the angle by |acos x - acos y| <= sqrt(2|x-y|) +
  // |x-y|, plus ulp-scale headroom for the exact std::acos itself. Degrades
  // to the never-prune band (abs = 4 >= pi) when norms underflow the floor.
  double md = static_cast<double>(m);
  double e_c =
      (2.0 * md + 64.0) * kDblEps + md * 1e-315 / (min_norm * min_norm);
  double e_d = std::sqrt(2.0 * e_c) + e_c + 1e-12;
  return ScreenBound{0.0, std::min(e_d, 4.0)};
}

// --- Fused screened tile relax --------------------------------------------
// Certain-skip cutoff in squared space for the fused Euclidean kernel: the
// lane values stay SQUARED (no SQRTPS on the skip path), so the
// distance-space skip threshold thr must map to a squared cutoff hi with
//   v > hi (finite)  =>  sqrtf(v) > thr.
// IEEE sqrt is correctly rounded and monotone, so the exact boundary is
// within ~2.5 float ulps of thr^2; a 1e-6 relative inflation clears it with
// orders of magnitude to spare. Outside the float range where the relative
// margin is trustworthy (subnormal or near-overflow squares) the cutoff
// degrades to +inf — no certain skip, every lane goes through the certified
// candidate test, which is always safe.
float SquaredSkipCutoff(float thr) {
  if (!(thr < std::numeric_limits<float>::infinity())) {
    return std::numeric_limits<float>::infinity();
  }
  float t2 = thr * thr;
  if (t2 >= 1e-30f && t2 <= 1e37f) return t2 * (1.0f + 1e-6f);
  return std::numeric_limits<float>::infinity();
}

// The register-resident screen + relax + rescue loop behind
// Metric::ScreenedRelaxTile for all-dense layouts. Per data row: one
// 16-lane fp32 kernel call into a 64-byte stack buffer and one packed
// compare against the row's certain-skip cutoff (kernels::RescueMask16F32);
// only rows with a lane in the certified band do further work. Besides
// removing the fp32 tile traffic (write + re-read of nq x nr floats, which
// dominates at low dimension), the fused loop certifies skips MORE
// aggressively than the unfused base loop: band-hit rows resolve through a
// per-row argmin screen instead of the serial per-center cascade, so the
// rescue set is typically SMALLER (never more than nq * nr; fused <=
// unfused is pinned in screen_test) while the final dist / assignment /
// argmax stay bit-identical to the exact relax fold.

// The fused loop. Two facts make it both fast and safe:
//
//   * The tile relax is a strict-min fold: the final (dist[r],
//     assignment[r]) is the exact minimum over incoming dist and all lane
//     distances, with the FIRST rank winning exact ties — a pure function
//     of the pair distances, independent of relax order. So a fused kernel
//     need not replay the unfused loop's serial lane cascade; it only has
//     to produce that function's value bit for bit.
//   * Per row, the candidates for that minimum are certified by the
//     argmin-screening argument (see ScreenedArgClosestWithin): with
//     U = min(dist[r], ScreenedUpper(smin)) over the row's finite lane
//     values, any lane whose certified lower bound exceeds U provably
//     cannot improve or tie the final minimum. Evaluating only the
//     candidates, in ascending rank with a strict-min relax, reproduces
//     the exact fold — typically ONE exact evaluation per touched row,
//     against the serial cascade's string of band hits (and strictly no
//     more than the nq * nr the unscreened path pays).
//
// The fast path stays one packed compare: rows where every lane clears the
// certain-skip cutoff (mask_thr[r], in the lane kernels' native value
// space — squared for Euclidean, so no SQRTPS runs there) are done in
// ~RescueMask16F32 alone. A band-hit row's argmin screen is packed too:
// MinFinite16F32 reduces the lane block (still in native space — sqrt and
// min commute, so Euclidean pays ONE scalar sqrt on the reduced value,
// `to_distance_scalar`), the candidate cutoff maps back through
// mask_cutoff, and a second RescueMask16F32 yields the candidate bitset —
// walked in ascending rank so exact ties keep first-rank semantics.
template <typename LaneF32Fn, typename FinishFn, typename ToDistanceFn,
          typename MaskCutoffFn, typename ExactPairFn>
size_t FusedDenseScreenedRelaxTile(
    const Dataset& queries, size_t q_begin, size_t nq, size_t rank_base,
    const Dataset& data, size_t r_begin, size_t nr, const ScreenBound& bound,
    std::span<double> dist, std::span<size_t> assignment,
    const LaneF32Fn& lanes, const FinishFn& finish,
    const ToDistanceFn& to_distance_scalar, const MaskCutoffFn& mask_cutoff,
    const ExactPairFn& exact_pair) {
  constexpr size_t kRowBlock = 256;
  constexpr size_t kLanes = kernels::kTileLanesF32;
  const double inv_rel = (1.0 + 1e-12) / (1.0 - bound.rel);
  const size_t dim = data.dim();
  size_t exact_evals = 0;
  thread_local std::vector<float> qt;
  thread_local std::vector<float> mask_thr;
  qt.resize(dim * kLanes);
  kernels::VecView qv[kLanes];
  float vals[kLanes];
  for (size_t rb = 0; rb < nr; rb += kRowBlock) {
    size_t rn = std::min(kRowBlock, nr - rb);
    // Cache each row's certain-skip cutoff for the whole center sweep; it
    // only changes when a rescue improves the row's distance.
    mask_thr.resize(rn);
    for (size_t i = 0; i < rn; ++i) {
      mask_thr[i] = mask_cutoff(
          ScreenSkipThreshold(dist[r_begin + rb + i], bound.abs, inv_rel));
    }
    for (size_t qc = 0; qc < nq; qc += kLanes) {
      size_t qn = std::min(kLanes, nq - qc);
      for (size_t l = 0; l < qn; ++l) {
        qv[l] = queries.row(q_begin + qc + l);
      }
      kernels::PackQueryLanesF32(qv, qn, dim, qt.data());
      const uint32_t lane_mask =
          qn >= kLanes ? 0xFFFFu : ((1u << qn) - 1u);
      for (size_t r = 0; r < rn; ++r) {
        size_t gr = r_begin + rb + r;
        kernels::VecView row = data.row(gr);
        lanes(qt.data(), row.values, dim, vals);
        finish(vals, qv, row, qn);
        if ((kernels::RescueMask16F32(vals, mask_thr[r]) & lane_mask) == 0) {
          continue;
        }
        // Band hit: run the certified argmin screen for this row's
        // strict-min fold. Padding lanes (zero-filled queries) must not
        // reach the packed min.
        if (qn < kLanes) {
          for (size_t l = qn; l < kLanes; ++l) {
            vals[l] = std::numeric_limits<float>::infinity();
          }
        }
        float smin = to_distance_scalar(kernels::MinFinite16F32(vals));
        double min_upper = std::min(dist[gr], ScreenedUpper(smin, bound));
        float cutoff = mask_cutoff(NextUpNonNegativeF32(
            static_cast<float>((min_upper + bound.abs) * inv_rel)));
        uint32_t cand = kernels::RescueMask16F32(vals, cutoff) & lane_mask;
        bool improved = false;
        while (cand != 0) {
          size_t l = static_cast<size_t>(std::countr_zero(cand));
          cand &= cand - 1;
          double d = exact_pair(qv[l], row);
          ++exact_evals;
          if (d < dist[gr]) {
            dist[gr] = d;
            if (!assignment.empty()) assignment[gr] = rank_base + qc + l;
            improved = true;
          }
        }
        if (improved) {
          mask_thr[r] = mask_cutoff(
              ScreenSkipThreshold(dist[gr], bound.abs, inv_rel));
        }
      }
    }
  }
  return exact_evals;
}

// Cosine-space screened relax for all-sparse tiles: the screen compares
// raw fp32 dots against per-row cos thresholds, so the skip path costs the
// SparseDotLanesF32 walks plus one multiply-compare per lane — no arccos
// anywhere. Every center chunk is decoded ONCE per call and a row streams
// against all of them back to back, so a band-hit row screens its ENTIRE
// center set at once: the certified cosine-space argmin test (angular min
// is cosine max; C_LO lower-bounds the cosine of the row's final minimum,
// so lanes certified below it cannot improve or tie the strict-min fold)
// leaves typically ONE candidate per row per sweep to pay the exact
// per-pair merge — not one per 8-lane chunk, which is what makes sparse
// cosine screening profitable at all (rescued merges are ~an order of
// magnitude costlier than blocked pairs). Zero-norm rows and lanes always
// rescue: their distances are convention values the screen does not model.
// Deterministic: decode order, walk order, and thresholds depend only on
// inputs.
size_t CosineSparseScreenedRelaxTile(const Dataset& queries, size_t q_begin,
                                     size_t nq, size_t rank_base,
                                     const Dataset& data, size_t r_begin,
                                     size_t nr, std::span<double> dist,
                                     std::span<size_t> assignment) {
  constexpr size_t kSub = kernels::kTileLanes;
  const double inf = std::numeric_limits<double>::infinity();
  const float flt_max = std::numeric_limits<float>::max();
  ScreenSideStats qs = SideStatsOf(queries);
  ScreenSideStats rs = SideStatsOf(data);
  const double e_c = CosineSpaceError(MaxPairTerms(qs, rs, data.dim()),
                                      qs.min_positive_norm,
                                      rs.min_positive_norm);
  // Absorbs the cos() rounding and the norm multiplications/divisions of
  // the skip tests (each ~1e-16, far below this absolute cosine slack).
  constexpr double kCosSlack = 1e-9;
  size_t exact_evals = 0;
  size_t num_sub = (nq + kSub - 1) / kSub;
  thread_local std::vector<kernels::SparseTileScratch> ws_pool;
  if (ws_pool.size() < num_sub) ws_pool.resize(num_sub);
  thread_local std::vector<kernels::VecView> qv;
  thread_local std::vector<double> qnorm;
  thread_local std::vector<double> inv_nb;
  thread_local std::vector<float> dots;
  thread_local std::vector<double> cvals;
  qv.resize(nq);
  qnorm.resize(nq);
  inv_nb.resize(nq);
  dots.resize(num_sub * kSub);
  cvals.resize(nq);
  for (size_t l = 0; l < nq; ++l) {
    qv[l] = queries.row(q_begin + l);
    qnorm[l] = qv[l].norm;
    inv_nb[l] = qnorm[l] > 0.0 ? 1.0 / qnorm[l] : 0.0;
  }
  const size_t direct_dim = DirectIndexDim(data, nr);
  thread_local std::vector<SparseDecodeKey> key_pool;
  if (key_pool.size() < ws_pool.size()) key_pool.resize(ws_pool.size());
  for (size_t sub = 0; sub < num_sub; ++sub) {
    size_t sub_n = std::min(kSub, nq - sub * kSub);
    SparseDecodeKey want{queries.content_stamp(), q_begin, nq, sub,
                         direct_dim};
    if (!SparseDecodeCached(want, key_pool[sub])) {
      kernels::PackSparseQueryLanes(qv.data() + sub * kSub, sub_n, direct_dim,
                                    ws_pool[sub]);
    }
  }
  auto row_cos_threshold = [&](double cur, double rnorm) -> double {
    // (cos(cur) - slack - e_c) * row_norm; -inf (never skip) when the row
    // norm is zero or the row has not been relaxed yet.
    if (!(rnorm > 0.0) || !(cur < inf)) return -inf;
    return (std::cos(cur) - kCosSlack - e_c) * rnorm;
  };
  for (size_t r = 0; r < nr; ++r) {
    size_t gr = r_begin + r;
    kernels::VecView row = data.row(gr);
    double na = row.norm;
    double cthr = row_cos_threshold(dist[gr], na);
    uint32_t any = 0;
    for (size_t sub = 0; sub < num_sub; ++sub) {
      any |= kernels::SparseCosineScreenLanes(ws_pool[sub], row, cthr,
                                              qnorm.data() + sub * kSub,
                                              dots.data() + sub * kSub);
    }
    if (any == 0) continue;
    if (na > 0.0) {
      double inv_na = 1.0 / na;
      // Lower bound on cos(dist[gr]), division rounding inside the slack.
      double c_lo = cthr * inv_na + e_c;
      for (size_t l = 0; l < nq; ++l) {
        float s = dots[l];
        if (qnorm[l] > 0.0 && s >= -flt_max && s <= flt_max) {
          double c = static_cast<double>(s) * inv_na * inv_nb[l];
          cvals[l] = c;
          if (c - e_c > c_lo) c_lo = c - e_c;
        } else {
          cvals[l] = inf;  // convention / overflow lane: always a candidate
        }
      }
      for (size_t l = 0; l < nq; ++l) {
        if (cvals[l] + e_c < c_lo) continue;
        double d = kernels::AngularCosine(qv[l], row);
        ++exact_evals;
        if (d < dist[gr]) {
          dist[gr] = d;
          if (!assignment.empty()) assignment[gr] = rank_base + l;
        }
      }
    } else {
      // Zero-norm row: every pair takes its exact convention value.
      for (size_t l = 0; l < nq; ++l) {
        double d = kernels::AngularCosine(qv[l], row);
        ++exact_evals;
        if (d < dist[gr]) {
          dist[gr] = d;
          if (!assignment.empty()) assignment[gr] = rank_base + l;
        }
      }
    }
  }
  return exact_evals;
}

}  // namespace

void Metric::DistanceToMany(const Point& query, const Dataset& data,
                            size_t begin, std::span<double> out) const {
  // Scalar fallback for metrics that do not provide a columnar kernel.
  DIVERSE_CHECK_LE(begin + out.size(), data.size());
  for (size_t i = 0; i < out.size(); ++i) {
    out[i] = Distance(query, data.point(begin + i));
  }
}

void Metric::DistanceTile(const Dataset& queries, size_t q_begin, size_t nq,
                          const Dataset& data, size_t r_begin, size_t nr,
                          double* out, size_t out_stride) const {
  // Scalar fallback for metrics that do not provide a columnar kernel.
  CheckTileArgs(queries, q_begin, nq, data, r_begin, nr, out_stride);
  for (size_t q = 0; q < nq; ++q) {
    for (size_t r = 0; r < nr; ++r) {
      out[q * out_stride + r] =
          Distance(queries.point(q_begin + q), data.point(r_begin + r));
    }
  }
}

void Metric::DistanceTileF32(const Dataset& queries, size_t q_begin,
                             size_t nq, const Dataset& data, size_t r_begin,
                             size_t nr, float* out, size_t out_stride) const {
  // Fallback for metrics without a reduced-precision kernel: exact tile,
  // narrowed to float. Valid under the default ScreenErrorBound (one fp32
  // rounding); ScreeningProfitable() stays false so screened sweeps do not
  // route hot loops through it.
  CheckTileArgs(queries, q_begin, nq, data, r_begin, nr, out_stride);
  if (nq == 0 || nr == 0) return;
  thread_local std::vector<double> tmp;
  tmp.resize(nq * nr);
  DistanceTile(queries, q_begin, nq, data, r_begin, nr, tmp.data(), nr);
  for (size_t q = 0; q < nq; ++q) {
    for (size_t r = 0; r < nr; ++r) {
      out[q * out_stride + r] = static_cast<float>(tmp[q * nr + r]);
    }
  }
}

void Metric::DistanceToManyF32(const Point& query, const Dataset& data,
                               size_t begin, std::span<float> out) const {
  DIVERSE_CHECK_LE(begin + out.size(), data.size());
  thread_local std::vector<double> tmp;
  tmp.resize(out.size());
  DistanceToMany(query, data, begin, std::span<double>(tmp.data(), out.size()));
  for (size_t i = 0; i < out.size(); ++i) {
    out[i] = static_cast<float>(tmp[i]);
  }
}

double Metric::DistanceRows(const Dataset& a, size_t i, const Dataset& b,
                            size_t j) const {
  return Distance(a.point(i), b.point(j));
}

void Metric::DistanceRowsMany(const Dataset& a, size_t i, const Dataset& b,
                              std::span<const uint32_t> rows,
                              double* out) const {
  for (size_t t = 0; t < rows.size(); ++t) {
    out[t] = DistanceRows(a, i, b, rows[t]);
  }
}

ScreenBound Metric::ScreenErrorBound(const Dataset&, const Dataset&) const {
  // The default F32 kernels narrow an exact double to float: one fp32
  // rounding (4x margin), plus a floor for the denormal-float range.
  return ScreenBound{4.0 * kF32Eps, 1e-40};
}

ScreenBound Metric::ScreenErrorBound(const Point&, const Dataset&) const {
  return ScreenBound{4.0 * kF32Eps, 1e-40};
}

bool Metric::ScreeningProfitableFor(const Dataset&, const Dataset&) const {
  return ScreeningProfitable();
}

bool Metric::ScreeningProfitableFor(const Point&, const Dataset&) const {
  return ScreeningProfitable();
}

bool Metric::RelaxTileScreeningProfitableFor(const Dataset& queries,
                                             const Dataset& data) const {
  return ScreeningProfitableFor(queries, data);
}

ScreenBound Metric::IndexSlack(const Dataset&) const {
  // Unbounded band: every prune test fails — sound, and consistent with
  // SupportsMetricIndexing() == false.
  return ScreenBound{0.0, std::numeric_limits<double>::infinity()};
}

size_t Metric::ScreenedRelaxTile(const Dataset& queries, size_t q_begin,
                                 size_t nq, size_t rank_base,
                                 const Dataset& data, size_t r_begin,
                                 size_t nr, const ScreenBound& bound,
                                 std::span<double> dist,
                                 std::span<size_t> assignment) const {
  // Unfused fallback, correct for any metric: materialize a kQChunk x
  // kRowBlock fp32 tile through DistanceTileF32, collect the band hits
  // against cached per-row skip thresholds, and batch their exact
  // re-evaluations through DistanceRowsMany. Overriding never changes the
  // relax fold's result — only which (and how many, typically fewer) pairs
  // pay an exact rescue evaluation.
  constexpr size_t kRowBlock = 256;
  constexpr size_t kQChunk = 64;
  const double inv_rel = (1.0 + 1e-12) / (1.0 - bound.rel);
  size_t exact_evals = 0;
  thread_local std::vector<float> tile;
  thread_local std::vector<float> thr;
  thread_local std::vector<uint32_t> rescue;
  thread_local std::vector<double> rescued_d;
  for (size_t rb = 0; rb < nr; rb += kRowBlock) {
    size_t rn = std::min(kRowBlock, nr - rb);
    size_t row0 = r_begin + rb;
    thr.resize(rn);
    for (size_t i = 0; i < rn; ++i) {
      thr[i] = ScreenSkipThreshold(dist[row0 + i], bound.abs, inv_rel);
    }
    for (size_t qc = 0; qc < nq; qc += kQChunk) {
      size_t qn = std::min(kQChunk, nq - qc);
      tile.resize(qn * rn);
      DistanceTileF32(queries, q_begin + qc, qn, data, row0, rn, tile.data(),
                      rn);
      for (size_t q = 0; q < qn; ++q) {
        const float* tile_row = tile.data() + q * rn;
        rescue.clear();
        CollectScreenRescues(tile_row, thr.data(), rn,
                             static_cast<uint32_t>(row0), rescue);
        if (rescue.empty()) continue;
        rescued_d.resize(rescue.size());
        DistanceRowsMany(queries, q_begin + qc + q, data, rescue,
                         rescued_d.data());
        exact_evals += rescue.size();
        size_t rank = rank_base + qc + q;
        for (size_t t = 0; t < rescue.size(); ++t) {
          size_t row = rescue[t];
          double d = rescued_d[t];
          if (d < dist[row]) {
            dist[row] = d;
            if (!assignment.empty()) assignment[row] = rank;
            thr[row - row0] = ScreenSkipThreshold(d, bound.abs, inv_rel);
          }
        }
      }
    }
  }
  return exact_evals;
}

size_t RelaxTilesAndArgFarthest(const Metric& metric, const Dataset& queries,
                                size_t q_begin, size_t nq, size_t rank_base,
                                const Dataset& data, std::span<double> dist,
                                std::span<size_t> assignment) {
  size_t n = data.size();
  DIVERSE_CHECK_GE(nq, 1u);
  DIVERSE_CHECK_LE(q_begin + nq, queries.size());
  DIVERSE_CHECK_EQ(dist.size(), n);
  if (!assignment.empty()) DIVERSE_CHECK_EQ(assignment.size(), n);
  if (n == 0) return 0;

  // Row block per tile: small enough that a kQChunk x kRowBlock tile stays
  // cache-resident (the relax pass re-reads every tile entry right after it
  // is written), large enough to amortize the per-block query transpose.
  constexpr size_t kRowBlock = 256;
  // Centers per tile: bounds the scratch to kQChunk * kRowBlock doubles
  // (128 KiB); within one DistanceTile call each data row is fetched once
  // for all kQChunk centers.
  constexpr size_t kQChunk = 64;

  size_t grain = GrainRows(data);
  size_t num_ranges = (n + grain - 1) / grain;
  std::vector<size_t> range_best(num_ranges, SIZE_MAX);
  GlobalThreadPool().ParallelForRanges(n, grain, [&](size_t lo, size_t hi) {
    thread_local std::vector<double> tile;
    size_t local_best = lo;
    double local_val = -std::numeric_limits<double>::infinity();
    for (size_t rb = lo; rb < hi; rb += kRowBlock) {
      size_t rn = std::min(kRowBlock, hi - rb);
      for (size_t qc = 0; qc < nq; qc += kQChunk) {
        size_t qn = std::min(kQChunk, nq - qc);
        tile.resize(qn * rn);
        metric.DistanceTile(queries, q_begin + qc, qn, data, rb, rn,
                            tile.data(), rn);
        // Relax centers in ascending rank order: identical to the
        // sequential one-center-at-a-time relax loop, including ties
        // (strictly smaller wins, earliest rank kept). Center-major order
        // streams the tile sequentially while the block's dist (and
        // assignment) slices stay cache-resident.
        for (size_t q = 0; q < qn; ++q) {
          const double* tile_row = tile.data() + q * rn;
          if (assignment.empty()) {
            for (size_t i = 0; i < rn; ++i) {
              if (tile_row[i] < dist[rb + i]) dist[rb + i] = tile_row[i];
            }
          } else {
            size_t rank = rank_base + qc + q;
            for (size_t i = 0; i < rn; ++i) {
              if (tile_row[i] < dist[rb + i]) {
                dist[rb + i] = tile_row[i];
                assignment[rb + i] = rank;
              }
            }
          }
        }
      }
      for (size_t i = rb; i < rb + rn; ++i) {
        if (dist[i] > local_val) {
          local_val = dist[i];
          local_best = i;
        }
      }
    }
    range_best[lo / grain] = local_best;
  });

  size_t best = range_best[0];
  DIVERSE_CHECK_LT(best, n);
  for (size_t r = 1; r < num_ranges; ++r) {
    size_t candidate = range_best[r];
    if (candidate == SIZE_MAX) continue;
    if (dist[candidate] > dist[best]) best = candidate;
  }
  return best;
}

size_t Metric::RelaxAndArgFarthest(const Point& query, const Dataset& data,
                                   std::span<double> dist,
                                   std::span<size_t> assignment,
                                   size_t center_rank) const {
  size_t n = data.size();
  DIVERSE_CHECK_EQ(dist.size(), n);
  if (!assignment.empty()) DIVERSE_CHECK_EQ(assignment.size(), n);
  if (n == 0) return 0;
  size_t best = 0;
  double best_val = -std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < n; ++i) {
    double d = Distance(query, data.point(i));
    if (d < dist[i]) {
      dist[i] = d;
      if (!assignment.empty()) assignment[i] = center_rank;
    }
    if (dist[i] > best_val) {
      best_val = dist[i];
      best = i;
    }
  }
  return best;
}

double EuclideanMetric::Distance(const Point& a, const Point& b) const {
  return std::sqrt(a.SquaredEuclideanDistanceTo(b));
}

void EuclideanMetric::DistanceToMany(const Point& query, const Dataset& data,
                                     size_t begin,
                                     std::span<double> out) const {
  kernels::VecView q = QueryView(query, data);
  BatchMap(data, begin, out, [&q](const kernels::VecView& row) {
    return kernels::Euclidean(row, q);
  });
}

size_t EuclideanMetric::RelaxAndArgFarthest(const Point& query,
                                            const Dataset& data,
                                            std::span<double> dist,
                                            std::span<size_t> assignment,
                                            size_t center_rank) const {
  kernels::VecView q = QueryView(query, data);
  return BatchRelaxArgFarthest(data, dist, assignment, center_rank,
                               [&q](const kernels::VecView& row) {
                                 return kernels::Euclidean(row, q);
                               });
}

void EuclideanMetric::DistanceTile(const Dataset& queries, size_t q_begin,
                                   size_t nq, const Dataset& data,
                                   size_t r_begin, size_t nr, double* out,
                                   size_t out_stride) const {
  BatchTile<true>(
      queries, q_begin, nq, data, r_begin, nr, out, out_stride,
      [](const kernels::VecView& q, const kernels::VecView& row) {
        return kernels::Euclidean(row, q);
      },
      kernels::SquaredEuclideanLanes, kernels::SparseSquaredEuclideanLanes,
      /*sparse_union_walk=*/true,
      [](double* vals, const kernels::VecView*, const kernels::VecView&,
         size_t qn) { kernels::SqrtLanes(vals, qn); });
}

void EuclideanMetric::DistanceTileF32(const Dataset& queries, size_t q_begin,
                                      size_t nq, const Dataset& data,
                                      size_t r_begin, size_t nr, float* out,
                                      size_t out_stride) const {
  BatchTileF32(
      queries, q_begin, nq, data, r_begin, nr, out, out_stride,
      [](const kernels::VecView& q, const kernels::VecView& row) {
        return kernels::EuclideanF32(row, q);
      },
      kernels::SquaredEuclideanLanesF32,
      kernels::SparseSquaredEuclideanLanesF32,
      /*sparse_union_walk=*/true,
      [](float* vals, const kernels::VecView*, const kernels::VecView&,
         size_t qn) { kernels::SqrtLanesF32(vals, qn); });
}

void EuclideanMetric::DistanceToManyF32(const Point& query,
                                        const Dataset& data, size_t begin,
                                        std::span<float> out) const {
  DIVERSE_CHECK_LE(begin + out.size(), data.size());
  kernels::VecView q = QueryView(query, data);
  // Squared pass first, then one batched SQRTPS sweep: the scalar sqrt the
  // exact kernel pays per row is the dominant cost at low dimension.
  for (size_t i = 0; i < out.size(); ++i) {
    out[i] = kernels::SquaredEuclideanF32(data.row(begin + i), q);
  }
  kernels::SqrtLanesF32(out.data(), out.size());
}

double EuclideanMetric::DistanceRows(const Dataset& a, size_t i,
                                     const Dataset& b, size_t j) const {
  return kernels::Euclidean(a.row(i), b.row(j));
}

void EuclideanMetric::DistanceRowsMany(const Dataset& a, size_t i,
                                       const Dataset& b,
                                       std::span<const uint32_t> rows,
                                       double* out) const {
  kernels::VecView q = a.row(i);
  for (size_t t = 0; t < rows.size(); ++t) {
    out[t] = kernels::SquaredEuclidean(q, b.row(rows[t]));
  }
  kernels::SqrtLanes(out, rows.size());
}

size_t EuclideanMetric::ScreenedRelaxTile(const Dataset& queries,
                                          size_t q_begin, size_t nq,
                                          size_t rank_base,
                                          const Dataset& data, size_t r_begin,
                                          size_t nr, const ScreenBound& bound,
                                          std::span<double> dist,
                                          std::span<size_t> assignment) const {
  if (queries.sparse_stats().rows > 0 || data.sparse_stats().rows > 0 ||
      data.dim() == 0) {
    // Sparse or mixed layouts keep the unfused tile path (the sparse
    // engine's block decode already amortizes; the fusion win is dense tile
    // traffic). Gate reads only dataset statistics — deterministic.
    return Metric::ScreenedRelaxTile(queries, q_begin, nq, rank_base, data,
                                     r_begin, nr, bound, dist, assignment);
  }
  // The lane values stay SQUARED everywhere (SquaredSkipCutoff maps both
  // the certain-skip and the candidate cutoffs instead — sound by sqrt
  // monotonicity, which also lets the packed min reduce in squared space):
  // the only square root on the screen side is the one scalar sqrtf on a
  // band-hit row's reduced minimum.
  return FusedDenseScreenedRelaxTile(
      queries, q_begin, nq, rank_base, data, r_begin, nr, bound, dist,
      assignment, kernels::SquaredEuclideanLanesF32,
      [](float*, const kernels::VecView*, const kernels::VecView&, size_t) {},
      [](float v) { return std::sqrt(v); },
      [](float thr) { return SquaredSkipCutoff(thr); },
      [](const kernels::VecView& q, const kernels::VecView& row) {
        return kernels::Euclidean(q, row);
      });
}

ScreenBound EuclideanMetric::ScreenErrorBound(const Dataset& queries,
                                              const Dataset& data) const {
  return AdditiveBound(
      MaxPairTerms(SideStatsOf(queries), SideStatsOf(data), data.dim()));
}

ScreenBound EuclideanMetric::ScreenErrorBound(const Point& query,
                                              const Dataset& data) const {
  return AdditiveBound(
      MaxPairTerms(SideStatsOf(query), SideStatsOf(data), data.dim()));
}

ScreenBound EuclideanMetric::IndexSlack(const Dataset& data) const {
  ScreenSideStats s = SideStatsOf(data);
  return AdditiveIndexSlack(MaxPairTerms(s, s, data.dim()));
}

double ManhattanMetric::Distance(const Point& a, const Point& b) const {
  return a.L1DistanceTo(b);
}

void ManhattanMetric::DistanceToMany(const Point& query, const Dataset& data,
                                     size_t begin,
                                     std::span<double> out) const {
  kernels::VecView q = QueryView(query, data);
  BatchMap(data, begin, out, [&q](const kernels::VecView& row) {
    return kernels::L1(row, q);
  });
}

size_t ManhattanMetric::RelaxAndArgFarthest(const Point& query,
                                            const Dataset& data,
                                            std::span<double> dist,
                                            std::span<size_t> assignment,
                                            size_t center_rank) const {
  kernels::VecView q = QueryView(query, data);
  return BatchRelaxArgFarthest(
      data, dist, assignment, center_rank,
      [&q](const kernels::VecView& row) { return kernels::L1(row, q); });
}

void ManhattanMetric::DistanceTile(const Dataset& queries, size_t q_begin,
                                   size_t nq, const Dataset& data,
                                   size_t r_begin, size_t nr, double* out,
                                   size_t out_stride) const {
  BatchTile<true>(
      queries, q_begin, nq, data, r_begin, nr, out, out_stride,
      [](const kernels::VecView& q, const kernels::VecView& row) {
        return kernels::L1(row, q);
      },
      kernels::L1Lanes, kernels::SparseL1Lanes, /*sparse_union_walk=*/true,
      [](double*, const kernels::VecView*, const kernels::VecView&, size_t) {
      });
}

void ManhattanMetric::DistanceTileF32(const Dataset& queries, size_t q_begin,
                                      size_t nq, const Dataset& data,
                                      size_t r_begin, size_t nr, float* out,
                                      size_t out_stride) const {
  BatchTileF32(
      queries, q_begin, nq, data, r_begin, nr, out, out_stride,
      [](const kernels::VecView& q, const kernels::VecView& row) {
        return kernels::L1F32(row, q);
      },
      kernels::L1LanesF32, kernels::SparseL1LanesF32,
      /*sparse_union_walk=*/true,
      [](float*, const kernels::VecView*, const kernels::VecView&, size_t) {
      });
}

void ManhattanMetric::DistanceToManyF32(const Point& query,
                                        const Dataset& data, size_t begin,
                                        std::span<float> out) const {
  DIVERSE_CHECK_LE(begin + out.size(), data.size());
  kernels::VecView q = QueryView(query, data);
  for (size_t i = 0; i < out.size(); ++i) {
    out[i] = kernels::L1F32(data.row(begin + i), q);
  }
}

double ManhattanMetric::DistanceRows(const Dataset& a, size_t i,
                                     const Dataset& b, size_t j) const {
  return kernels::L1(a.row(i), b.row(j));
}

size_t ManhattanMetric::ScreenedRelaxTile(const Dataset& queries,
                                          size_t q_begin, size_t nq,
                                          size_t rank_base,
                                          const Dataset& data, size_t r_begin,
                                          size_t nr, const ScreenBound& bound,
                                          std::span<double> dist,
                                          std::span<size_t> assignment) const {
  if (queries.sparse_stats().rows > 0 || data.sparse_stats().rows > 0 ||
      data.dim() == 0) {
    return Metric::ScreenedRelaxTile(queries, q_begin, nq, rank_base, data,
                                     r_begin, nr, bound, dist, assignment);
  }
  return FusedDenseScreenedRelaxTile(
      queries, q_begin, nq, rank_base, data, r_begin, nr, bound, dist,
      assignment, kernels::L1LanesF32,
      [](float*, const kernels::VecView*, const kernels::VecView&, size_t) {},
      [](float v) { return v; },
      [](float thr) { return thr; },
      [](const kernels::VecView& q, const kernels::VecView& row) {
        return kernels::L1(q, row);
      });
}

ScreenBound ManhattanMetric::ScreenErrorBound(const Dataset& queries,
                                              const Dataset& data) const {
  return AdditiveBound(
      MaxPairTerms(SideStatsOf(queries), SideStatsOf(data), data.dim()));
}

ScreenBound ManhattanMetric::ScreenErrorBound(const Point& query,
                                              const Dataset& data) const {
  return AdditiveBound(
      MaxPairTerms(SideStatsOf(query), SideStatsOf(data), data.dim()));
}

ScreenBound ManhattanMetric::IndexSlack(const Dataset& data) const {
  ScreenSideStats s = SideStatsOf(data);
  return AdditiveIndexSlack(MaxPairTerms(s, s, data.dim()));
}

double CosineMetric::Distance(const Point& a, const Point& b) const {
  DIVERSE_CHECK_EQ(a.dim(), b.dim());
  return kernels::AngularCosine(a.View(), b.View());
}

void CosineMetric::DistanceToMany(const Point& query, const Dataset& data,
                                  size_t begin, std::span<double> out) const {
  kernels::VecView q = QueryView(query, data);
  BatchMap(data, begin, out, [&q](const kernels::VecView& row) {
    return kernels::AngularCosine(row, q);
  });
}

size_t CosineMetric::RelaxAndArgFarthest(const Point& query,
                                         const Dataset& data,
                                         std::span<double> dist,
                                         std::span<size_t> assignment,
                                         size_t center_rank) const {
  kernels::VecView q = QueryView(query, data);
  return BatchRelaxArgFarthest(data, dist, assignment, center_rank,
                               [&q](const kernels::VecView& row) {
                                 return kernels::AngularCosine(row, q);
                               });
}

void CosineMetric::DistanceTile(const Dataset& queries, size_t q_begin,
                                size_t nq, const Dataset& data, size_t r_begin,
                                size_t nr, double* out,
                                size_t out_stride) const {
  BatchTile<true>(
      queries, q_begin, nq, data, r_begin, nr, out, out_stride,
      [](const kernels::VecView& q, const kernels::VecView& row) {
        return kernels::AngularCosine(row, q);
      },
      kernels::DotLanes, kernels::SparseDotLanes,
      /*sparse_union_walk=*/false,
      // Same postprocess as kernels::AngularCosine, with the lane-computed
      // dot products: identical zero-norm conventions, product, clamp, acos.
      [](double* vals, const kernels::VecView* qv, const kernels::VecView& row,
         size_t qn) {
        double na = row.norm;
        for (size_t lane = 0; lane < qn; ++lane) {
          double nb = qv[lane].norm;
          if (na == 0.0 && nb == 0.0) {
            vals[lane] = 0.0;
          } else if (na == 0.0 || nb == 0.0) {
            vals[lane] = M_PI / 2.0;
          } else {
            double c = vals[lane] / (na * nb);
            c = c < -1.0 ? -1.0 : (c > 1.0 ? 1.0 : c);
            vals[lane] = std::acos(c);
          }
        }
      });
}

void CosineMetric::DistanceTileF32(const Dataset& queries, size_t q_begin,
                                   size_t nq, const Dataset& data,
                                   size_t r_begin, size_t nr, float* out,
                                   size_t out_stride) const {
  BatchTileF32(
      queries, q_begin, nq, data, r_begin, nr, out, out_stride,
      [](const kernels::VecView& q, const kernels::VecView& row) {
        return static_cast<float>(kernels::AngularCosineFromScreenedDot(
            kernels::DotF32(row, q), row.norm, q.norm));
      },
      kernels::DotLanesF32, kernels::SparseDotLanesF32,
      /*sparse_union_walk=*/false,
      // Same postprocess as the exact tile but from the fp32 dot: exact
      // double norms (so the zero-norm conventions carry no error), double
      // divide/clamp/acos, narrowed at the end. Overflowed dots become NaN
      // (always rescued).
      [](float* vals, const kernels::VecView* qv, const kernels::VecView& row,
         size_t qn) {
        for (size_t lane = 0; lane < qn; ++lane) {
          vals[lane] = static_cast<float>(kernels::AngularCosineFromScreenedDot(
              vals[lane], row.norm, qv[lane].norm));
        }
      });
}

void CosineMetric::DistanceToManyF32(const Point& query, const Dataset& data,
                                     size_t begin,
                                     std::span<float> out) const {
  DIVERSE_CHECK_LE(begin + out.size(), data.size());
  kernels::VecView q = QueryView(query, data);
  for (size_t i = 0; i < out.size(); ++i) {
    kernels::VecView row = data.row(begin + i);
    out[i] = static_cast<float>(kernels::AngularCosineFromScreenedDot(
        kernels::DotF32(row, q), row.norm, q.norm));
  }
}

double CosineMetric::DistanceRows(const Dataset& a, size_t i,
                                  const Dataset& b, size_t j) const {
  return kernels::AngularCosine(a.row(i), b.row(j));
}

size_t CosineMetric::ScreenedRelaxTile(const Dataset& queries, size_t q_begin,
                                       size_t nq, size_t rank_base,
                                       const Dataset& data, size_t r_begin,
                                       size_t nr, const ScreenBound& bound,
                                       std::span<double> dist,
                                       std::span<size_t> assignment) const {
  bool all_dense = queries.sparse_stats().rows == 0 &&
                   data.sparse_stats().rows == 0 && data.dim() > 0;
  if (all_dense) {
    // Dense tiles keep the angular screen (identical fp32 values and
    // rescue decisions to the unfused tile), fused: the acos polynomial
    // runs in the register-resident loop instead of over a materialized
    // tile.
    return FusedDenseScreenedRelaxTile(
        queries, q_begin, nq, rank_base, data, r_begin, nr, bound, dist,
        assignment, kernels::DotLanesF32,
        [](float* vals, const kernels::VecView* qv,
           const kernels::VecView& row, size_t qn) {
          for (size_t l = 0; l < qn; ++l) {
            vals[l] =
                static_cast<float>(kernels::AngularCosineFromScreenedDot(
                    vals[l], row.norm, qv[l].norm));
          }
        },
        [](float v) { return v; },
        [](float thr) { return thr; },
        [](const kernels::VecView& q, const kernels::VecView& row) {
          return kernels::AngularCosine(q, row);
        });
  }
  if (queries.sparse_stats().rows == queries.size() &&
      data.sparse_stats().rows == data.size() && !data.empty()) {
    // All-sparse: the cosine-space screen over the blocked CSR dot engine.
    return CosineSparseScreenedRelaxTile(queries, q_begin, nq, rank_base,
                                         data, r_begin, nr, dist, assignment);
  }
  // Mixed layouts are gated off by RelaxTileScreeningProfitableFor; keep a
  // correct fallback anyway.
  return Metric::ScreenedRelaxTile(queries, q_begin, nq, rank_base, data,
                                   r_begin, nr, bound, dist, assignment);
}

bool CosineMetric::RelaxTileScreeningProfitableFor(const Dataset& queries,
                                                   const Dataset& data) const {
  bool all_dense = queries.sparse_stats().rows == 0 &&
                   data.sparse_stats().rows == 0;
  bool all_sparse = queries.sparse_stats().rows == queries.size() &&
                    data.sparse_stats().rows == data.size() &&
                    !queries.empty() && !data.empty();
  return all_dense || all_sparse;
}

ScreenBound CosineMetric::ScreenErrorBound(const Dataset& queries,
                                           const Dataset& data) const {
  ScreenSideStats q = SideStatsOf(queries);
  ScreenSideStats r = SideStatsOf(data);
  return CosineBound(MaxPairTerms(q, r, data.dim()), q.min_positive_norm,
                     r.min_positive_norm);
}

ScreenBound CosineMetric::ScreenErrorBound(const Point& query,
                                           const Dataset& data) const {
  ScreenSideStats q = SideStatsOf(query);
  ScreenSideStats r = SideStatsOf(data);
  return CosineBound(MaxPairTerms(q, r, data.dim()), q.min_positive_norm,
                     r.min_positive_norm);
}

bool CosineMetric::ScreeningProfitableFor(const Dataset& queries,
                                          const Dataset& data) const {
  // Dense-only: the sparse angular tile spends its time finding index
  // intersections, which fp32 cannot cheapen, and angular rescues pay full
  // per-pair merges — measured a net loss on text corpora.
  return queries.sparse_stats().rows == 0 && data.sparse_stats().rows == 0;
}

bool CosineMetric::ScreeningProfitableFor(const Point& query,
                                          const Dataset& data) const {
  return !query.is_sparse() && data.sparse_stats().rows == 0;
}

ScreenBound CosineMetric::IndexSlack(const Dataset& data) const {
  // The distance here is the ANGULAR cosine — a genuine metric, so the
  // triangle inequality holds in angle space and that is where the tree
  // prunes; the slack is the angular lift of the double dot's cosine band.
  ScreenSideStats s = SideStatsOf(data);
  return CosineIndexSlack(MaxPairTerms(s, s, data.dim()),
                          s.min_positive_norm);
}

double JaccardMetric::Distance(const Point& a, const Point& b) const {
  return a.SupportJaccardDistanceTo(b);
}

void JaccardMetric::DistanceToMany(const Point& query, const Dataset& data,
                                   size_t begin, std::span<double> out) const {
  kernels::VecView q = QueryView(query, data);
  BatchMap(data, begin, out, [&q](const kernels::VecView& row) {
    return kernels::SupportJaccard(row, q);
  });
}

size_t JaccardMetric::RelaxAndArgFarthest(const Point& query,
                                          const Dataset& data,
                                          std::span<double> dist,
                                          std::span<size_t> assignment,
                                          size_t center_rank) const {
  kernels::VecView q = QueryView(query, data);
  return BatchRelaxArgFarthest(data, dist, assignment, center_rank,
                               [&q](const kernels::VecView& row) {
                                 return kernels::SupportJaccard(row, q);
                               });
}

void JaccardMetric::DistanceTile(const Dataset& queries, size_t q_begin,
                                 size_t nq, const Dataset& data,
                                 size_t r_begin, size_t nr, double* out,
                                 size_t out_stride) const {
  // No dense lane kernel: support counting over dense rows is integer-exact
  // in any order and the devirtualized per-pair loop is already the win.
  // Sparse blocks, however, go through the decoded presence-bitmask walk —
  // intersections are counted once per block instead of re-merging both
  // index lists for every pair.
  BatchTile<false>(
      queries, q_begin, nq, data, r_begin, nr, out, out_stride,
      [](const kernels::VecView& q, const kernels::VecView& row) {
        return kernels::SupportJaccard(row, q);
      },
      [](const float*, const float*, size_t, double*) {},
      kernels::SparseJaccardLanes, /*sparse_union_walk=*/false,
      [](double*, const kernels::VecView*, const kernels::VecView&, size_t) {
      });
}

double JaccardMetric::DistanceRows(const Dataset& a, size_t i,
                                   const Dataset& b, size_t j) const {
  return kernels::SupportJaccard(a.row(i), b.row(j));
}

ScreenBound JaccardMetric::IndexSlack(const Dataset&) const {
  // Support Jaccard is a ratio of exact integer counts: one double divide
  // and one subtract round, so a couple of ulps relative plus an underflow
  // floor covers it with the usual >=2x margin.
  return ScreenBound{8.0 * kDblEps, 1e-30};
}

uint64_t SparseQueryDecodeCount() {
  return g_sparse_decode_count.load(std::memory_order_relaxed);
}

uint64_t SparseQueryDecodeHits() {
  return g_sparse_decode_hits.load(std::memory_order_relaxed);
}

void ResetSparseQueryDecodeStats() {
  g_sparse_decode_count.store(0, std::memory_order_relaxed);
  g_sparse_decode_hits.store(0, std::memory_order_relaxed);
}

std::unique_ptr<Metric> MakeMetricByName(const std::string& name) {
  if (name == "euclidean") return std::make_unique<EuclideanMetric>();
  if (name == "manhattan") return std::make_unique<ManhattanMetric>();
  if (name == "cosine") return std::make_unique<CosineMetric>();
  if (name == "jaccard") return std::make_unique<JaccardMetric>();
  return nullptr;
}

}  // namespace diverse
