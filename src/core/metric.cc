#include "core/metric.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "core/dataset.h"
#include "core/vector_kernels.h"
#include "util/check.h"
#include "util/thread_pool.h"

namespace diverse {

namespace {

// Rows per parallel range: aim for a fixed amount of coordinate work per
// range so dispatch overhead stays negligible at any dimension, with a floor
// that keeps ranges coarse for very high-dimensional rows. Range boundaries
// depend only on (n, grain), never on scheduling, so per-range reductions
// are deterministic at any thread count.
constexpr size_t kGrainOps = 16384;
constexpr size_t kMinGrainRows = 256;

size_t GrainRows(const Dataset& data) {
  size_t dim = std::max<size_t>(data.dim(), 1);
  return std::max(kMinGrainRows, kGrainOps / dim);
}

// out[i] = row_distance(data.row(begin + i)) for all i, in parallel.
template <typename RowFn>
void BatchMap(const Dataset& data, size_t begin, std::span<double> out,
              const RowFn& row_distance) {
  DIVERSE_CHECK_LE(begin + out.size(), data.size());
  GlobalThreadPool().ParallelForRanges(
      out.size(), GrainRows(data), [&](size_t lo, size_t hi) {
        for (size_t i = lo; i < hi; ++i) {
          out[i] = row_distance(data.row(begin + i));
        }
      });
}

// The fused relax-and-argmax sweep shared by all metrics. Each range
// records its first maximum; ranges combine in ascending order with a
// strict comparison, which reproduces the scalar loop's first-max-wins
// semantics exactly.
template <typename RowFn>
size_t BatchRelaxArgFarthest(const Dataset& data, std::span<double> dist,
                             std::span<size_t> assignment, size_t center_rank,
                             const RowFn& row_distance) {
  size_t n = data.size();
  DIVERSE_CHECK_EQ(dist.size(), n);
  if (!assignment.empty()) DIVERSE_CHECK_EQ(assignment.size(), n);
  if (n == 0) return 0;

  size_t grain = GrainRows(data);
  size_t num_ranges = (n + grain - 1) / grain;
  // SIZE_MAX marks ranges a single inline call subsumed (the pool runs the
  // whole sweep as one range when the work is small or it has one worker).
  std::vector<size_t> range_best(num_ranges, SIZE_MAX);
  GlobalThreadPool().ParallelForRanges(
      n, grain, [&](size_t lo, size_t hi) {
        size_t local_best = lo;
        double local_val = -std::numeric_limits<double>::infinity();
        for (size_t i = lo; i < hi; ++i) {
          double d = row_distance(data.row(i));
          if (d < dist[i]) {
            dist[i] = d;
            if (!assignment.empty()) assignment[i] = center_rank;
          }
          if (dist[i] > local_val) {
            local_val = dist[i];
            local_best = i;
          }
        }
        range_best[lo / grain] = local_best;
      });

  size_t best = range_best[0];
  DIVERSE_CHECK_LT(best, n);
  for (size_t r = 1; r < num_ranges; ++r) {
    size_t candidate = range_best[r];
    if (candidate == SIZE_MAX) continue;
    if (dist[candidate] > dist[best]) best = candidate;
  }
  return best;
}

kernels::VecView QueryView(const Point& query, const Dataset& data) {
  if (!data.empty()) DIVERSE_CHECK_EQ(query.dim(), data.dim());
  return query.View();
}

}  // namespace

void Metric::DistanceToMany(const Point& query, const Dataset& data,
                            size_t begin, std::span<double> out) const {
  // Scalar fallback for metrics that do not provide a columnar kernel.
  DIVERSE_CHECK_LE(begin + out.size(), data.size());
  for (size_t i = 0; i < out.size(); ++i) {
    out[i] = Distance(query, data.point(begin + i));
  }
}

size_t Metric::RelaxAndArgFarthest(const Point& query, const Dataset& data,
                                   std::span<double> dist,
                                   std::span<size_t> assignment,
                                   size_t center_rank) const {
  size_t n = data.size();
  DIVERSE_CHECK_EQ(dist.size(), n);
  if (!assignment.empty()) DIVERSE_CHECK_EQ(assignment.size(), n);
  if (n == 0) return 0;
  size_t best = 0;
  double best_val = -std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < n; ++i) {
    double d = Distance(query, data.point(i));
    if (d < dist[i]) {
      dist[i] = d;
      if (!assignment.empty()) assignment[i] = center_rank;
    }
    if (dist[i] > best_val) {
      best_val = dist[i];
      best = i;
    }
  }
  return best;
}

double EuclideanMetric::Distance(const Point& a, const Point& b) const {
  return std::sqrt(a.SquaredEuclideanDistanceTo(b));
}

void EuclideanMetric::DistanceToMany(const Point& query, const Dataset& data,
                                     size_t begin,
                                     std::span<double> out) const {
  kernels::VecView q = QueryView(query, data);
  BatchMap(data, begin, out, [&q](const kernels::VecView& row) {
    return kernels::Euclidean(row, q);
  });
}

size_t EuclideanMetric::RelaxAndArgFarthest(const Point& query,
                                            const Dataset& data,
                                            std::span<double> dist,
                                            std::span<size_t> assignment,
                                            size_t center_rank) const {
  kernels::VecView q = QueryView(query, data);
  return BatchRelaxArgFarthest(data, dist, assignment, center_rank,
                               [&q](const kernels::VecView& row) {
                                 return kernels::Euclidean(row, q);
                               });
}

double ManhattanMetric::Distance(const Point& a, const Point& b) const {
  return a.L1DistanceTo(b);
}

void ManhattanMetric::DistanceToMany(const Point& query, const Dataset& data,
                                     size_t begin,
                                     std::span<double> out) const {
  kernels::VecView q = QueryView(query, data);
  BatchMap(data, begin, out, [&q](const kernels::VecView& row) {
    return kernels::L1(row, q);
  });
}

size_t ManhattanMetric::RelaxAndArgFarthest(const Point& query,
                                            const Dataset& data,
                                            std::span<double> dist,
                                            std::span<size_t> assignment,
                                            size_t center_rank) const {
  kernels::VecView q = QueryView(query, data);
  return BatchRelaxArgFarthest(
      data, dist, assignment, center_rank,
      [&q](const kernels::VecView& row) { return kernels::L1(row, q); });
}

double CosineMetric::Distance(const Point& a, const Point& b) const {
  DIVERSE_CHECK_EQ(a.dim(), b.dim());
  return kernels::AngularCosine(a.View(), b.View());
}

void CosineMetric::DistanceToMany(const Point& query, const Dataset& data,
                                  size_t begin, std::span<double> out) const {
  kernels::VecView q = QueryView(query, data);
  BatchMap(data, begin, out, [&q](const kernels::VecView& row) {
    return kernels::AngularCosine(row, q);
  });
}

size_t CosineMetric::RelaxAndArgFarthest(const Point& query,
                                         const Dataset& data,
                                         std::span<double> dist,
                                         std::span<size_t> assignment,
                                         size_t center_rank) const {
  kernels::VecView q = QueryView(query, data);
  return BatchRelaxArgFarthest(data, dist, assignment, center_rank,
                               [&q](const kernels::VecView& row) {
                                 return kernels::AngularCosine(row, q);
                               });
}

double JaccardMetric::Distance(const Point& a, const Point& b) const {
  return a.SupportJaccardDistanceTo(b);
}

void JaccardMetric::DistanceToMany(const Point& query, const Dataset& data,
                                   size_t begin, std::span<double> out) const {
  kernels::VecView q = QueryView(query, data);
  BatchMap(data, begin, out, [&q](const kernels::VecView& row) {
    return kernels::SupportJaccard(row, q);
  });
}

size_t JaccardMetric::RelaxAndArgFarthest(const Point& query,
                                          const Dataset& data,
                                          std::span<double> dist,
                                          std::span<size_t> assignment,
                                          size_t center_rank) const {
  kernels::VecView q = QueryView(query, data);
  return BatchRelaxArgFarthest(data, dist, assignment, center_rank,
                               [&q](const kernels::VecView& row) {
                                 return kernels::SupportJaccard(row, q);
                               });
}

}  // namespace diverse
