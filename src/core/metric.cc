#include "core/metric.h"

#include <algorithm>
#include <cmath>

namespace diverse {

double EuclideanMetric::Distance(const Point& a, const Point& b) const {
  return std::sqrt(a.SquaredEuclideanDistanceTo(b));
}

double ManhattanMetric::Distance(const Point& a, const Point& b) const {
  return a.L1DistanceTo(b);
}

double CosineMetric::Distance(const Point& a, const Point& b) const {
  double na = a.norm(), nb = b.norm();
  if (na == 0.0 && nb == 0.0) return 0.0;
  if (na == 0.0 || nb == 0.0) return M_PI / 2.0;
  double c = a.Dot(b) / (na * nb);
  // Guard against rounding pushing the cosine outside [-1, 1].
  c = std::clamp(c, -1.0, 1.0);
  return std::acos(c);
}

double JaccardMetric::Distance(const Point& a, const Point& b) const {
  return a.SupportJaccardDistanceTo(b);
}

}  // namespace diverse
