// Core-set containers and the GMM-based composable core-set constructions
// used by the MapReduce algorithms (Theorems 4 and 5 of the paper).
//
//   * GmmCoreset(S, k')          — kernel only; (1+eps)-composable core-set
//                                  for remote-edge and remote-cycle (Thm 4).
//   * GmmExtCoreset(S, k, k')    — Algorithm 1 (GMM-EXT): kernel of k' points
//                                  plus up to k-1 delegates per cluster;
//                                  (1+eps)-composable core-set for
//                                  remote-clique/-star/-bipartition/-tree
//                                  (Thm 5).
// The generalized (multiplicity) variant GMM-GEN lives in
// generalized_coreset.h.

#ifndef DIVERSE_CORE_CORESET_H_
#define DIVERSE_CORE_CORESET_H_

#include <cstddef>
#include <span>
#include <vector>

#include "core/dataset.h"
#include "core/gmm.h"
#include "core/metric.h"
#include "core/point.h"

namespace diverse {

/// A plain core-set: a subset of the input points. `indices[i]` is the
/// position of `points[i]` in the originating set, so callers that work with
/// local indices (tests, instantiation passes) can trace points back.
struct Coreset {
  PointSet points;
  std::vector<size_t> indices;

  size_t size() const { return points.size(); }
};

/// GMM core-set: the k' points selected by a farthest-first traversal of
/// `data`. Requires 1 <= k_prime <= data.size().
Coreset GmmCoreset(const Dataset& data, const Metric& metric, size_t k_prime);

/// Shim: copies `points` into a Dataset and builds the core-set on it.
Coreset GmmCoreset(std::span<const Point> points, const Metric& metric,
                   size_t k_prime);

/// GMM-EXT core-set (Algorithm 1): runs GMM(S, k') to obtain a kernel
/// T' = {c_1..c_k'}, clusters S around the kernel (ties toward earlier
/// centers), and returns each center plus up to `delegates_per_cluster`
/// additional points of its cluster. With delegates_per_cluster = k-1 this
/// is exactly the paper's GMM-EXT(S, k, k'); Theorem 7's randomized MR
/// algorithm calls it with a smaller cap. Output size is at most
/// k' * (1 + delegates_per_cluster).
Coreset GmmExtCoreset(const Dataset& data, const Metric& metric,
                      size_t k_prime, size_t delegates_per_cluster);

/// Shim: copies `points` into a Dataset and builds the core-set on it.
Coreset GmmExtCoreset(std::span<const Point> points, const Metric& metric,
                      size_t k_prime, size_t delegates_per_cluster);

}  // namespace diverse

#endif  // DIVERSE_CORE_CORESET_H_
