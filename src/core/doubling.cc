#include "core/doubling.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/cover_tree.h"
#include "util/check.h"
#include "util/rng.h"

namespace diverse {

namespace {

// Size of a greedy cover of `ball` (indices into `sample`) by balls of
// radius `radius` centered at members of `ball`. Greedy set cover by
// farthest-first traversal: repeatedly open a center at an uncovered point.
size_t GreedyCoverSize(const std::vector<size_t>& ball,
                       std::span<const Point> sample, const Metric& metric,
                       double radius) {
  std::vector<bool> covered(ball.size(), false);
  size_t centers = 0;
  for (size_t i = 0; i < ball.size(); ++i) {
    if (covered[i]) continue;
    ++centers;
    covered[i] = true;
    for (size_t j = i + 1; j < ball.size(); ++j) {
      if (!covered[j] &&
          metric.Distance(sample[ball[i]], sample[ball[j]]) <= radius) {
        covered[j] = true;
      }
    }
  }
  return centers;
}

}  // namespace

DoublingEstimate EstimateDoublingDimension(
    std::span<const Point> points, const Metric& metric,
    const DoublingEstimateOptions& options) {
  DIVERSE_CHECK_GE(points.size(), 2u);
  Rng rng(options.seed);

  // Subsample for tractability; the doubling dimension of a subsample lower
  // bounds the true one, which is the safe direction for choosing k'.
  std::vector<Point> sample;
  if (points.size() > options.max_sample) {
    sample.reserve(options.max_sample);
    for (size_t i = 0; i < options.max_sample; ++i) {
      sample.push_back(points[rng.NextBounded(points.size())]);
    }
  } else {
    sample.assign(points.begin(), points.end());
  }

  DoublingEstimate est;
  for (size_t c = 0; c < options.num_centers; ++c) {
    size_t center = rng.NextBounded(sample.size());
    // Base radius: distance to a random other point (probes balls at the
    // data's natural scales rather than arbitrary absolute radii).
    size_t other = rng.NextBounded(sample.size());
    double base = metric.Distance(sample[center], sample[other]);
    if (base <= 0.0) continue;
    double r = base;
    for (size_t s = 0; s < options.num_scales; ++s, r /= 2.0) {
      std::vector<size_t> ball;
      for (size_t i = 0; i < sample.size(); ++i) {
        if (metric.Distance(sample[center], sample[i]) <= r) {
          ball.push_back(i);
        }
      }
      if (ball.size() < 2) break;
      size_t cover = GreedyCoverSize(ball, sample, metric, r / 2.0);
      est.worst_cover_size = std::max(est.worst_cover_size, cover);
      ++est.probes;
    }
  }
  if (est.worst_cover_size > 0) {
    est.dimension = std::log2(static_cast<double>(est.worst_cover_size));
  }
  return est;
}

DoublingEstimate EstimateDoublingDimensionFromTree(const CoverTree& tree) {
  DoublingEstimate est;
  const auto& nodes = tree.nodes();
  std::vector<size_t> stack;
  for (size_t v = 0; v < nodes.size(); ++v) {
    const CoverTree::Node& nd = nodes[v];
    // Leaves and point masses (radius 0) probe nothing: their half-radius
    // cover is trivially themselves.
    if (nd.left == 0 || nd.radius <= 0.0) continue;
    double half = nd.radius / 2.0;
    // Minimal descendant frontier with radius <= half: descend only through
    // subtrees still wider than half. Each frontier node's rows lie within
    // its own radius (<= half) of its center, and the frontier partitions
    // the probed node's rows, so it is an explicit half-radius cover.
    size_t frontier = 0;
    stack.assign(1, v);
    while (!stack.empty()) {
      size_t w = stack.back();
      stack.pop_back();
      const CoverTree::Node& c = nodes[w];
      if (w != v && (c.left == 0 || c.radius <= half)) {
        ++frontier;
        continue;
      }
      stack.push_back(c.left);
      stack.push_back(c.right);
    }
    est.worst_cover_size = std::max(est.worst_cover_size, frontier);
    ++est.probes;
  }
  if (est.worst_cover_size > 0) {
    est.dimension = std::log2(static_cast<double>(est.worst_cover_size));
  }
  return est;
}

}  // namespace diverse
