// Traveling-salesman tour weight over a distance matrix.
//
// The remote-cycle diversity objective is w(TSP(S)), the weight of a minimum
// Hamiltonian cycle. Computing it exactly is NP-hard, so the library offers:
//  * Held-Karp exact dynamic programming for n <= kTspExactLimit (tests,
//    small-k experiments), and
//  * a metric heuristic (MST double-tree shortcutting, then 2-opt local
//    improvement) whose value is within a factor 2 of optimal on metric
//    inputs — this is the canonical evaluator at larger k, used consistently
//    for both our algorithms and baselines so ratio comparisons stay fair.

#ifndef DIVERSE_CORE_TSP_H_
#define DIVERSE_CORE_TSP_H_

#include <cstddef>
#include <vector>

#include "core/distance_matrix.h"

namespace diverse {

/// Maximum instance size accepted by TspWeightExact (2^n * n^2 DP).
inline constexpr size_t kTspExactLimit = 18;

/// Weight of a cyclic tour visiting vertices in the given order.
/// A tour of size 0 or 1 has weight 0; size 2 counts the edge twice
/// (the degenerate "cycle" a-b-a).
double TourWeight(const DistanceMatrix& d, const std::vector<size_t>& tour);

/// Optimal TSP tour weight via Held-Karp. Requires d.size() <= kTspExactLimit.
double TspWeightExact(const DistanceMatrix& d);

/// Heuristic TSP tour: MST preorder shortcut (2-approximation on metrics)
/// improved by 2-opt until a local optimum. Returns the visiting order.
std::vector<size_t> TspTourHeuristic(const DistanceMatrix& d);

/// Weight of TspTourHeuristic(d).
double TspWeightHeuristic(const DistanceMatrix& d);

/// Exact weight when the instance is small enough, heuristic weight
/// otherwise. This is the evaluator used by the remote-cycle objective.
double TspWeightAuto(const DistanceMatrix& d);

}  // namespace diverse

#endif  // DIVERSE_CORE_TSP_H_
