// Brute-force exact solvers for tiny instances.
//
// div_k(S) is NP-hard for every objective, but for n up to ~20 and small k
// it can be computed by enumerating all C(n, k) subsets. The exact values
// anchor the unit tests: approximation guarantees of GMM / matching /
// core-set pipelines are asserted against these ground truths.

#ifndef DIVERSE_CORE_EXACT_H_
#define DIVERSE_CORE_EXACT_H_

#include <cstddef>
#include <span>
#include <vector>

#include "core/distance_matrix.h"
#include "core/diversity.h"
#include "core/metric.h"
#include "core/point.h"

namespace diverse {

/// Result of exact k-diversity maximization.
struct ExactResult {
  /// An optimal k-subset (row indices).
  std::vector<size_t> best_subset;
  /// div_k(S): the diversity of best_subset.
  double value = 0.0;
};

/// Enumerates every k-subset of the rows of `d` and returns one maximizing
/// the diversity objective. Requires k <= d.size() and C(d.size(), k)
/// manageable (guarded: d.size() <= 24).
ExactResult ExactDiversityMaximization(DiversityProblem problem,
                                       const DistanceMatrix& d, size_t k);

/// Convenience overload over points.
ExactResult ExactDiversityMaximization(DiversityProblem problem,
                                       std::span<const Point> points,
                                       const Metric& metric, size_t k);

/// Optimal range r*_k: the minimum over k-subsets T of
/// max_{p in S} d(p, T) (the k-center optimum). Brute force, same limits.
double ExactOptimalRange(const DistanceMatrix& d, size_t k);

/// Optimal farness rho*_k: the maximum over k-subsets T of
/// min_{c in T} d(c, T \ {c}); equals the remote-edge optimum.
double ExactOptimalFarness(const DistanceMatrix& d, size_t k);

}  // namespace diverse

#endif  // DIVERSE_CORE_EXACT_H_
