// Empirical doubling-dimension estimation.
//
// The paper's guarantees are parameterized by the doubling dimension D of
// the metric space: every ball of radius r is coverable by at most 2^D balls
// of radius r/2. D is rarely known for real data (the paper notes the
// musiXmatch corpus's "doubling dimension is unknown"), so this module
// estimates it empirically: for sampled centers and radii, it greedily
// covers each ball B(c, r) with balls of radius r/2 and reports
// log2(max cover size). The estimate guides the choice of k' (theory wants
// k' ~ (c/eps)^D k).

#ifndef DIVERSE_CORE_DOUBLING_H_
#define DIVERSE_CORE_DOUBLING_H_

#include <cstddef>
#include <cstdint>
#include <span>

#include "core/metric.h"
#include "core/point.h"

namespace diverse {

/// Parameters for the doubling-dimension estimator.
struct DoublingEstimateOptions {
  /// Number of sampled ball centers.
  size_t num_centers = 32;
  /// Number of radius scales probed per center (r, r/2, r/4, ...).
  size_t num_scales = 3;
  /// Sample size drawn from the input when it is larger (the estimator is
  /// quadratic in this).
  size_t max_sample = 2000;
  uint64_t seed = 1;
};

/// Result of the estimation.
struct DoublingEstimate {
  /// Estimated doubling dimension: log2 of the largest half-radius cover
  /// found over all probed balls.
  double dimension = 0.0;
  /// The largest half-radius cover size observed.
  size_t worst_cover_size = 0;
  /// Number of (center, scale) probes performed.
  size_t probes = 0;
};

/// Estimates the doubling dimension of `points` under `metric`.
/// Requires at least 2 points.
DoublingEstimate EstimateDoublingDimension(
    std::span<const Point> points, const Metric& metric,
    const DoublingEstimateOptions& options = {});

class CoverTree;

/// Estimates the doubling dimension from a built metric index
/// (core/cover_tree.h) — no extra distance evaluations: every internal node
/// of radius R is a ball the build already covered with descendant balls,
/// so its minimal descendant frontier of radius <= R/2 is an explicit
/// half-radius cover. Reports log2 of the largest frontier over all
/// internal nodes (probes = internal nodes examined). Like the sampling
/// estimator this is an empirical estimate — the tree's two-pole partition
/// need not be a minimal cover, but on data the index prunes well the two
/// estimators agree to within a couple of bits (see doubling_test.cc).
/// Leaves that never shrink below R/2 count as one ball (the safe,
/// underestimating direction for choosing k').
DoublingEstimate EstimateDoublingDimensionFromTree(const CoverTree& tree);

}  // namespace diverse

#endif  // DIVERSE_CORE_DOUBLING_H_
