#include "data/sparse_text.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <vector>

#include "util/check.h"
#include "util/rng.h"

namespace diverse {

namespace {

// Samples from a Zipf distribution over {0..n-1} by inverting the CDF with
// binary search over precomputed cumulative weights.
class ZipfSampler {
 public:
  ZipfSampler(size_t n, double exponent) : cdf_(n) {
    double acc = 0.0;
    for (size_t i = 0; i < n; ++i) {
      acc += 1.0 / std::pow(static_cast<double>(i + 1), exponent);
      cdf_[i] = acc;
    }
    total_ = acc;
  }

  size_t Sample(Rng& rng) const {
    double u = rng.NextDouble() * total_;
    auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    if (it == cdf_.end()) return cdf_.size() - 1;
    return static_cast<size_t>(it - cdf_.begin());
  }

 private:
  std::vector<double> cdf_;
  double total_ = 0.0;
};

}  // namespace

PointSet GenerateSparseTextDataset(const SparseTextOptions& options) {
  DIVERSE_CHECK_GE(options.vocab_size, 1u);
  DIVERSE_CHECK_GE(options.min_terms, 1u);
  DIVERSE_CHECK_GE(options.max_terms, options.min_terms);
  DIVERSE_CHECK_LE(options.max_terms, options.vocab_size);
  DIVERSE_CHECK_GE(options.topic_fraction, 0.0);
  DIVERSE_CHECK_LE(options.topic_fraction, 1.0);

  Rng rng(options.seed);
  ZipfSampler background(options.vocab_size, options.zipf_exponent);

  // Topic t owns the vocabulary slice [t*slice, (t+1)*slice).
  size_t slice = options.num_topics > 0
                     ? options.vocab_size / options.num_topics
                     : 0;

  PointSet docs;
  docs.reserve(options.n);
  for (size_t i = 0; i < options.n; ++i) {
    if (i > 0 && rng.NextDouble() < options.duplicate_fraction) {
      // Near-duplicate: perturb a random earlier document. The perturbation
      // strength is itself random so duplicate distances span a continuum of
      // scales (from near-identical re-releases to loose rewrites) — the
      // multi-scale structure real corpora exhibit.
      const Point& base = docs[rng.NextBounded(i)];
      double strength = 0.05 + 0.75 * rng.NextDouble();
      std::map<uint32_t, float> counts;
      for (size_t t = 0; t < base.sparse_indices().size(); ++t) {
        if (rng.NextDouble() < strength * 0.4) continue;  // drop the term
        float count = base.sparse_values()[t];
        if (rng.NextDouble() < strength) {
          count = std::max(1.0f, count + static_cast<float>(
                                             rng.NextInRange(-1, 2)));
        }
        counts.emplace(base.sparse_indices()[t], count);
      }
      size_t extra = static_cast<size_t>(
          strength * static_cast<double>(base.nnz()) * 0.5);
      for (size_t t = 0; t < extra && counts.size() < options.max_terms;
           ++t) {
        counts.emplace(static_cast<uint32_t>(background.Sample(rng)), 1.0f);
      }
      // Term drops may have pushed the document below the corpus filter;
      // refill from the background to respect the min_terms invariant.
      while (counts.size() < options.min_terms) {
        counts.emplace(static_cast<uint32_t>(background.Sample(rng)), 1.0f);
      }
      std::vector<uint32_t> indices;
      std::vector<float> values;
      for (const auto& [term, count] : counts) {
        indices.push_back(term);
        values.push_back(count);
      }
      docs.push_back(Point::Sparse(std::move(indices), std::move(values),
                                   options.vocab_size));
      continue;
    }
    // Power-law document length in [min_terms, max_terms]: inverse-CDF of
    // p(l) ~ 1/l^2, the shape of real bag-of-words length distributions.
    double u = rng.NextDouble();
    double lo = static_cast<double>(options.min_terms);
    double hi = static_cast<double>(options.max_terms);
    double len = lo * hi / (hi - u * (hi - lo));
    size_t num_terms = static_cast<size_t>(len);
    num_terms = std::clamp(num_terms, options.min_terms, options.max_terms);

    bool topical = options.num_topics > 0 && slice > 1 &&
                   rng.NextDouble() < options.topic_fraction;
    // Topical documents are *mixtures* of two topics with a random mixing
    // weight, and their overall topical bias is itself random. This yields a
    // continuum of pairwise angles (like real text), rather than the bimodal
    // same-topic/different-topic distribution a single-topic model produces —
    // important for the streaming doubling algorithm, whose phase thresholds
    // otherwise saturate immediately.
    size_t topic_a = topical ? rng.NextBounded(options.num_topics) : 0;
    size_t topic_b = topical ? rng.NextBounded(options.num_topics) : 0;
    double mix = rng.NextDouble();
    double bias = topical ? 0.2 + (options.topic_term_bias - 0.2) *
                                      rng.NextDouble()
                          : 0.0;

    // Draw distinct terms; counts follow a small geometric-ish distribution,
    // like word repetitions inside one document.
    std::map<uint32_t, float> counts;
    while (counts.size() < num_terms) {
      uint32_t term;
      if (topical && rng.NextDouble() < bias) {
        size_t topic = rng.NextDouble() < mix ? topic_a : topic_b;
        term = static_cast<uint32_t>(topic * slice + rng.NextBounded(slice));
      } else {
        term = static_cast<uint32_t>(background.Sample(rng));
      }
      float count = 1.0f;
      while (rng.NextDouble() < 0.3 && count < 32.0f) count += 1.0f;
      counts.emplace(term, count);  // keep the first draw of a repeated term
    }

    std::vector<uint32_t> indices;
    std::vector<float> values;
    indices.reserve(counts.size());
    values.reserve(counts.size());
    for (const auto& [term, count] : counts) {
      indices.push_back(term);
      values.push_back(count);
    }
    docs.push_back(
        Point::Sparse(std::move(indices), std::move(values),
                      options.vocab_size));
  }
  return docs;
}

}  // namespace diverse
