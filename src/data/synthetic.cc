#include "data/synthetic.h"

#include <cmath>
#include <vector>

#include "util/check.h"

namespace diverse {

Point RandomSpherePoint(Rng& rng, size_t dim, double radius) {
  // Gaussian direction, normalized: uniform on the sphere.
  std::vector<float> v(dim);
  double norm2 = 0.0;
  do {
    norm2 = 0.0;
    for (size_t d = 0; d < dim; ++d) {
      double g = rng.NextGaussian();
      v[d] = static_cast<float>(g);
      norm2 += g * g;
    }
  } while (norm2 == 0.0);
  double scale = radius / std::sqrt(norm2);
  for (size_t d = 0; d < dim; ++d) {
    v[d] = static_cast<float>(v[d] * scale);
  }
  return Point::Dense(std::move(v));
}

Point RandomBallPoint(Rng& rng, size_t dim, double radius) {
  // Uniform in the ball: uniform direction scaled by U^(1/dim).
  double u = rng.NextDouble();
  double r = radius * std::pow(u, 1.0 / static_cast<double>(dim));
  return RandomSpherePoint(rng, dim, r);
}

PointSet GenerateSphereDataset(const SphereDatasetOptions& options) {
  DIVERSE_CHECK_GE(options.n, options.k);
  DIVERSE_CHECK_GE(options.dim, 1u);
  Rng rng(options.seed);
  PointSet points;
  points.reserve(options.n);
  for (size_t i = 0; i < options.k; ++i) {
    points.push_back(RandomSpherePoint(rng, options.dim, 1.0));
  }
  for (size_t i = options.k; i < options.n; ++i) {
    points.push_back(RandomBallPoint(rng, options.dim, options.inner_radius));
  }
  return points;
}

SphereStream::SphereStream(const SphereDatasetOptions& options)
    : options_(options), rng_(options.seed) {
  DIVERSE_CHECK_GE(options.n, options.k);
}

Point SphereStream::Next() {
  DIVERSE_CHECK(HasNext());
  ++produced_;
  size_t remaining = options_.n - produced_ + 1;
  size_t planted_left = options_.k - planted_emitted_;
  // Emit a planted point with probability planted_left / remaining, which
  // scatters the k planted points uniformly over stream positions while
  // guaranteeing all are emitted by the end.
  if (planted_left > 0 && rng_.NextBounded(remaining) < planted_left) {
    ++planted_emitted_;
    return RandomSpherePoint(rng_, options_.dim, 1.0);
  }
  return RandomBallPoint(rng_, options_.dim, options_.inner_radius);
}

PointSet GenerateUniformCube(size_t n, size_t dim, uint64_t seed) {
  Rng rng(seed);
  PointSet points;
  points.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    std::vector<float> v(dim);
    for (size_t d = 0; d < dim; ++d) {
      v[d] = static_cast<float>(rng.NextDouble());
    }
    points.push_back(Point::Dense(std::move(v)));
  }
  return points;
}

PointSet GenerateGaussianBlobs(size_t n, size_t centers, size_t dim,
                               double stddev, uint64_t seed) {
  DIVERSE_CHECK_GE(centers, 1u);
  Rng rng(seed);
  PointSet center_points = GenerateUniformCube(centers, dim, rng.Next());
  PointSet points;
  points.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const Point& c = center_points[i % centers];
    std::vector<float> v(dim);
    for (size_t d = 0; d < dim; ++d) {
      v[d] = static_cast<float>(c.dense_values()[d] +
                                stddev * rng.NextGaussian());
    }
    points.push_back(Point::Dense(std::move(v)));
  }
  return points;
}

}  // namespace diverse
