#include "data/io.h"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <sstream>
#include <vector>

namespace diverse {

namespace {

constexpr uint32_t kBinaryMagic = 0x44495650;  // "DIVP"
constexpr uint8_t kDenseTag = 0;
constexpr uint8_t kSparseTag = 1;
// tag (1) + dim (4) + nnz (4): the smallest possible record. Used to reject
// header counts no file of this size could hold before reserving memory.
constexpr uint64_t kMinRecordBytes = 9;

std::string Quoted(const std::string& s) { return "'" + s + "'"; }

}  // namespace

std::string PointToTextLine(const Point& point) {
  // %.9g prints enough significant digits for exact float round-trips.
  char buf[48];
  std::string out;
  if (point.is_sparse()) {
    out = "s " + std::to_string(point.dim());
    const auto& idx = point.sparse_indices();
    const auto& val = point.sparse_values();
    for (size_t i = 0; i < idx.size(); ++i) {
      std::snprintf(buf, sizeof(buf), " %u:%.9g", idx[i],
                    static_cast<double>(val[i]));
      out += buf;
    }
  } else {
    out = "d";
    for (float v : point.dense_values()) {
      std::snprintf(buf, sizeof(buf), " %.9g", static_cast<double>(v));
      out += buf;
    }
  }
  return out;
}

std::optional<Point> PointFromTextLine(const std::string& line) {
  std::istringstream in(line);
  std::string tag;
  if (!(in >> tag)) return std::nullopt;
  if (tag == "d") {
    std::vector<float> values;
    float v;
    while (in >> v) values.push_back(v);
    if (!in.eof()) return std::nullopt;
    return Point::Dense(std::move(values));
  }
  if (tag == "s") {
    uint32_t dim;
    if (!(in >> dim)) return std::nullopt;
    std::vector<uint32_t> indices;
    std::vector<float> values;
    std::string pair;
    while (in >> pair) {
      size_t colon = pair.find(':');
      if (colon == std::string::npos) return std::nullopt;
      char* end = nullptr;
      unsigned long idx = std::strtoul(pair.c_str(), &end, 10);
      if (end != pair.c_str() + colon) return std::nullopt;
      float val = std::strtof(pair.c_str() + colon + 1, &end);
      if (end != pair.c_str() + pair.size()) return std::nullopt;
      if (!indices.empty() && idx <= indices.back()) return std::nullopt;
      if (idx >= dim) return std::nullopt;
      indices.push_back(static_cast<uint32_t>(idx));
      values.push_back(val);
    }
    return Point::Sparse(std::move(indices), std::move(values), dim);
  }
  return std::nullopt;
}

bool SavePointsText(const PointSet& points, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  out << "# diverse point set, " << points.size() << " points\n";
  for (const Point& p : points) out << PointToTextLine(p) << "\n";
  return static_cast<bool>(out);
}

namespace {

// Reads a whole file into memory for the parse cores. kNotFound when the
// file cannot be opened, kDataLoss on a mid-read I/O error.
StatusOr<std::string> ReadFileBytes(const std::string& path, bool binary) {
  std::ifstream in(path, binary ? std::ios::binary : std::ios::in);
  if (!in) return NotFoundError("cannot open " + Quoted(path));
  std::ostringstream buf;
  buf << in.rdbuf();
  if (in.bad()) return DataLossError("read error in " + Quoted(path));
  return std::move(buf).str();
}

}  // namespace

StatusOr<PointSet> TryParsePointsText(std::string_view text,
                                      const std::string& origin) {
  PointSet points;
  size_t line_no = 0;
  size_t pos = 0;
  std::string line;
  while (pos < text.size()) {
    size_t eol = text.find('\n', pos);
    if (eol == std::string_view::npos) eol = text.size();
    line.assign(text, pos, eol - pos);
    pos = eol + 1;
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::optional<Point> p = PointFromTextLine(line);
    if (!p.has_value()) {
      return InvalidArgumentError("malformed point on line " +
                                  std::to_string(line_no) + " of " +
                                  Quoted(origin) + ": " + Quoted(line));
    }
    points.push_back(std::move(*p));
  }
  return points;
}

StatusOr<PointSet> TryLoadPointsText(const std::string& path) {
  StatusOr<std::string> bytes = ReadFileBytes(path, /*binary=*/false);
  if (!bytes.ok()) return bytes.status();
  return TryParsePointsText(*bytes, path);
}

void AppendPointRecord(const Point& point, std::string* out) {
  const uint8_t tag = point.is_sparse() ? kSparseTag : kDenseTag;
  const uint32_t dim = static_cast<uint32_t>(point.dim());
  const uint32_t nnz = static_cast<uint32_t>(point.nnz());
  out->append(reinterpret_cast<const char*>(&tag), sizeof(tag));
  out->append(reinterpret_cast<const char*>(&dim), sizeof(dim));
  out->append(reinterpret_cast<const char*>(&nnz), sizeof(nnz));
  if (point.is_sparse()) {
    out->append(reinterpret_cast<const char*>(point.sparse_indices().data()),
                nnz * sizeof(uint32_t));
    out->append(reinterpret_cast<const char*>(point.sparse_values().data()),
                nnz * sizeof(float));
  } else {
    out->append(reinterpret_cast<const char*>(point.dense_values().data()),
                nnz * sizeof(float));
  }
}

std::string EncodePointsBinary(const PointSet& points) {
  std::string out;
  const uint32_t magic = kBinaryMagic;
  const uint64_t count = points.size();
  out.append(reinterpret_cast<const char*>(&magic), sizeof(magic));
  out.append(reinterpret_cast<const char*>(&count), sizeof(count));
  for (const Point& p : points) AppendPointRecord(p, &out);
  return out;
}

bool SavePointsBinary(const PointSet& points, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  const std::string bytes = EncodePointsBinary(points);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  return static_cast<bool>(out);
}

StatusOr<Point> TryReadPointRecord(ByteReader* in, const std::string& where) {
  uint8_t tag;
  uint32_t dim, nnz;
  if (!in->Read(&tag, sizeof(tag)) || !in->Read(&dim, sizeof(dim)) ||
      !in->Read(&nnz, sizeof(nnz))) {
    return DataLossError("truncated record header at " + where);
  }
  // A record's payload cannot exceed the bytes that remain: reject corrupt
  // nnz fields before they turn into huge allocations.
  const uint64_t entry_bytes =
      tag == kSparseTag ? sizeof(uint32_t) + sizeof(float) : sizeof(float);
  if (static_cast<uint64_t>(nnz) * entry_bytes > in->remaining()) {
    return DataLossError("record payload (" + std::to_string(nnz) +
                         " entries) exceeds file size at " + where);
  }
  if (tag == kDenseTag) {
    if (nnz != dim) {
      return InvalidArgumentError("dense record with nnz " +
                                  std::to_string(nnz) + " != dim " +
                                  std::to_string(dim) + " at " + where);
    }
    std::vector<float> values(nnz);
    if (!in->Read(values.data(), nnz * sizeof(float))) {
      return DataLossError("truncated dense payload at " + where);
    }
    return Point::Dense(std::move(values));
  }
  if (tag == kSparseTag) {
    if (nnz > dim) {
      return InvalidArgumentError("sparse record with nnz " +
                                  std::to_string(nnz) + " > dim " +
                                  std::to_string(dim) + " at " + where);
    }
    std::vector<uint32_t> indices(nnz);
    std::vector<float> values(nnz);
    if (!in->Read(indices.data(), nnz * sizeof(uint32_t)) ||
        !in->Read(values.data(), nnz * sizeof(float))) {
      return DataLossError("truncated sparse payload at " + where);
    }
    for (size_t j = 0; j + 1 < indices.size(); ++j) {
      if (indices[j] >= indices[j + 1]) {
        return InvalidArgumentError("unsorted sparse indices at " + where);
      }
    }
    if (!indices.empty() && indices.back() >= dim) {
      return InvalidArgumentError(
          "sparse index " + std::to_string(indices.back()) +
          " out of range for dim " + std::to_string(dim) + " at " + where);
    }
    return Point::Sparse(std::move(indices), std::move(values), dim);
  }
  return InvalidArgumentError("unknown record tag " +
                              std::to_string(static_cast<int>(tag)) + " at " +
                              where);
}

StatusOr<PointSet> TryParsePointsBinary(std::string_view bytes,
                                        const std::string& origin) {
  const uint64_t file_size = bytes.size();
  ByteReader in(bytes);
  uint32_t magic = 0;
  uint64_t count = 0;
  if (!in.Read(&magic, sizeof(magic)) || !in.Read(&count, sizeof(count))) {
    return DataLossError("truncated header (" + std::to_string(file_size) +
                         " bytes, want at least 12) in " + Quoted(origin));
  }
  if (magic != kBinaryMagic) {
    char hex[16];
    std::snprintf(hex, sizeof(hex), "0x%08X", magic);
    return InvalidArgumentError("bad magic " + std::string(hex) + " in " +
                                Quoted(origin) + " (want DIVP)");
  }
  // Reject record counts the file cannot possibly hold before reserving:
  // a corrupted count field must not translate into a huge allocation.
  const uint64_t payload = file_size - sizeof(magic) - sizeof(count);
  if (count > payload / kMinRecordBytes) {
    return InvalidArgumentError(
        "header claims " + std::to_string(count) + " records but " +
        Quoted(origin) + " has only " + std::to_string(payload) +
        " payload bytes");
  }
  PointSet points;
  points.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    StatusOr<Point> p = TryReadPointRecord(
        &in, "record " + std::to_string(i) + " of " + Quoted(origin));
    if (!p.ok()) return p.status();
    points.push_back(std::move(*p));
  }
  return points;
}

StatusOr<PointSet> TryLoadPointsBinary(const std::string& path) {
  StatusOr<std::string> bytes = ReadFileBytes(path, /*binary=*/true);
  if (!bytes.ok()) return bytes.status();
  return TryParsePointsBinary(*bytes, path);
}

StatusOr<Dataset> TryLoadDatasetText(const std::string& path) {
  StatusOr<PointSet> points = TryLoadPointsText(path);
  if (!points.ok()) return points.status();
  return Dataset(std::move(*points));
}

StatusOr<Dataset> TryLoadDatasetBinary(const std::string& path) {
  StatusOr<PointSet> points = TryLoadPointsBinary(path);
  if (!points.ok()) return points.status();
  return Dataset(std::move(*points));
}

std::optional<PointSet> LoadPointsText(const std::string& path) {
  StatusOr<PointSet> points = TryLoadPointsText(path);
  if (!points.ok()) return std::nullopt;
  return std::move(*points);
}

std::optional<PointSet> LoadPointsBinary(const std::string& path) {
  StatusOr<PointSet> points = TryLoadPointsBinary(path);
  if (!points.ok()) return std::nullopt;
  return std::move(*points);
}

std::optional<Dataset> LoadDatasetText(const std::string& path) {
  StatusOr<Dataset> data = TryLoadDatasetText(path);
  if (!data.ok()) return std::nullopt;
  return std::move(*data);
}

std::optional<Dataset> LoadDatasetBinary(const std::string& path) {
  StatusOr<Dataset> data = TryLoadDatasetBinary(path);
  if (!data.ok()) return std::nullopt;
  return std::move(*data);
}

}  // namespace diverse
