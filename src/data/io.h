// Dataset persistence: a text format for interchange and a compact binary
// format for large generated datasets, so experiments can be re-run on
// identical inputs (and real datasets like musiXmatch can be imported when
// available).
//
// Text format, one point per line:
//   dense:  "d v0 v1 ... v_{dim-1}"
//   sparse: "s <dim> i0:v0 i1:v1 ..."
// Lines starting with '#' are comments.
//
// Binary format: a small header (magic, count) followed by records; see
// io.cc for the exact layout. Both formats round-trip dense and sparse
// points exactly.
//
// The Try* loaders are the primary interface: they validate everything a
// hostile or half-written file could get wrong (missing file, bad magic,
// truncated header or record, unknown record tag, nnz > dim, unsorted or
// out-of-range sparse indices, a record count larger than the file could
// possibly hold, malformed text lines) and return a Status naming the
// offending record or line. The optional-returning loaders are shims over
// them for callers that only care about success.

#ifndef DIVERSE_DATA_IO_H_
#define DIVERSE_DATA_IO_H_

#include <cstddef>
#include <cstring>
#include <optional>
#include <string>
#include <string_view>

#include "core/dataset.h"
#include "core/point.h"
#include "util/status.h"

namespace diverse {

/// A bounds-checked sequential reader over an in-memory byte image. Every
/// Read checks the remaining length first, so composite decoders (the binary
/// point loader below, the transport payloads in comm/serialize.h) can never
/// run past a truncated buffer. A failed Read leaves the cursor where it
/// was, matching a failed ifstream::read.
class ByteReader {
 public:
  explicit ByteReader(std::string_view bytes)
      : p_(bytes.data()), remaining_(bytes.size()) {}

  /// Copies `n` bytes into `out`; false when fewer than `n` remain.
  bool Read(void* out, size_t n) {
    if (n > remaining_) return false;
    std::memcpy(out, p_, n);
    p_ += n;
    remaining_ -= n;
    return true;
  }

  /// Bytes not yet consumed.
  size_t remaining() const { return remaining_; }

 private:
  const char* p_;
  size_t remaining_;
};

/// Appends the binary-format record of one point (the per-point layout of
/// SavePointsBinary: tag, dim, nnz, then the coordinate payload) to `*out`.
/// Raw little-endian float bytes round-trip exactly, which is what makes
/// serialized partitions and core-sets bit-identical after transport.
void AppendPointRecord(const Point& point, std::string* out);

/// Reads one binary point record from `*in` with the same validation and
/// error taxonomy as TryLoadPointsBinary (truncation -> kDataLoss; nnz >
/// dim, unsorted or out-of-range sparse indices, unknown tag ->
/// kInvalidArgument). `where` names the record in error messages.
DIVERSE_MUST_USE StatusOr<Point> TryReadPointRecord(ByteReader* in,
                                                    const std::string& where);

/// Serializes `points` to the binary format in memory — the exact bytes
/// SavePointsBinary would write to a file. Decoded by TryParsePointsBinary.
std::string EncodePointsBinary(const PointSet& points);

/// Parses text-format bytes (the whole file contents). `origin` names the
/// source in error messages (a path, or "<fuzz>"/"<memory>"). The path
/// loaders below are thin read-the-file wrappers over these parse cores,
/// which are also the libFuzzer entry points (tests/fuzz/io_fuzz.cc):
/// every validation path is reachable from plain bytes, no filesystem
/// required.
DIVERSE_MUST_USE StatusOr<PointSet> TryParsePointsText(
    std::string_view text, const std::string& origin);

/// Parses binary-format bytes. Same validation and error taxonomy as
/// TryLoadPointsBinary (bad magic, truncation, impossible counts, unsorted
/// indices — all named with `origin`).
DIVERSE_MUST_USE StatusOr<PointSet> TryParsePointsBinary(
    std::string_view bytes, const std::string& origin);

/// Writes `points` in the text format. Returns false on I/O failure.
bool SavePointsText(const PointSet& points, const std::string& path);

/// Reads a text-format file. kNotFound when the file cannot be opened,
/// kInvalidArgument (naming the 1-based line) on a malformed line.
DIVERSE_MUST_USE StatusOr<PointSet> TryLoadPointsText(const std::string& path);

/// Writes `points` in the binary format. Returns false on I/O failure.
bool SavePointsBinary(const PointSet& points, const std::string& path);

/// Reads a binary-format file. kNotFound when the file cannot be opened,
/// kInvalidArgument on structural nonsense (bad magic, unknown record tag,
/// nnz > dim, unsorted/out-of-range sparse indices, impossible record
/// count), kDataLoss on truncation (short header or record, naming the
/// record index).
DIVERSE_MUST_USE StatusOr<PointSet> TryLoadPointsBinary(const std::string& path);

/// Reads a text-format file directly into columnar Dataset storage, ready
/// for the batched kernels. Same errors as TryLoadPointsText.
DIVERSE_MUST_USE StatusOr<Dataset> TryLoadDatasetText(const std::string& path);

/// Reads a binary-format file directly into columnar Dataset storage.
/// Same errors as TryLoadPointsBinary.
DIVERSE_MUST_USE StatusOr<Dataset> TryLoadDatasetBinary(const std::string& path);

/// Shims over the Try* loaders: nullopt on any failure, diagnostics
/// discarded.
std::optional<PointSet> LoadPointsText(const std::string& path);
std::optional<PointSet> LoadPointsBinary(const std::string& path);
std::optional<Dataset> LoadDatasetText(const std::string& path);
std::optional<Dataset> LoadDatasetBinary(const std::string& path);

/// Serializes one point to its text-format line (no trailing newline).
std::string PointToTextLine(const Point& point);

/// Parses one text-format line. Returns nullopt on malformed input.
std::optional<Point> PointFromTextLine(const std::string& line);

}  // namespace diverse

#endif  // DIVERSE_DATA_IO_H_
