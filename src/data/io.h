// Dataset persistence: a text format for interchange and a compact binary
// format for large generated datasets, so experiments can be re-run on
// identical inputs (and real datasets like musiXmatch can be imported when
// available).
//
// Text format, one point per line:
//   dense:  "d v0 v1 ... v_{dim-1}"
//   sparse: "s <dim> i0:v0 i1:v1 ..."
// Lines starting with '#' are comments.
//
// Binary format: a small header (magic, count) followed by records; see
// io.cc for the exact layout. Both formats round-trip dense and sparse
// points exactly.

#ifndef DIVERSE_DATA_IO_H_
#define DIVERSE_DATA_IO_H_

#include <optional>
#include <string>

#include "core/dataset.h"
#include "core/point.h"

namespace diverse {

/// Writes `points` in the text format. Returns false on I/O failure.
bool SavePointsText(const PointSet& points, const std::string& path);

/// Reads a text-format file. Returns nullopt on I/O or parse failure.
std::optional<PointSet> LoadPointsText(const std::string& path);

/// Writes `points` in the binary format. Returns false on I/O failure.
bool SavePointsBinary(const PointSet& points, const std::string& path);

/// Reads a binary-format file. Returns nullopt on I/O or format failure.
std::optional<PointSet> LoadPointsBinary(const std::string& path);

/// Reads a text-format file directly into columnar Dataset storage, ready
/// for the batched kernels. Returns nullopt on I/O or parse failure.
std::optional<Dataset> LoadDatasetText(const std::string& path);

/// Reads a binary-format file directly into columnar Dataset storage.
/// Returns nullopt on I/O or format failure.
std::optional<Dataset> LoadDatasetBinary(const std::string& path);

/// Serializes one point to its text-format line (no trailing newline).
std::string PointToTextLine(const Point& point);

/// Parses one text-format line. Returns nullopt on malformed input.
std::optional<Point> PointFromTextLine(const std::string& line);

}  // namespace diverse

#endif  // DIVERSE_DATA_IO_H_
