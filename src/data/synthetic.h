// Synthetic Euclidean datasets (Section 7 of the paper).
//
// The paper's generator: "for a given k, k points are randomly picked on the
// surface of the unit radius sphere centered at the origin, so to ensure the
// existence of a set of far-away points, and the other points are chosen
// uniformly at random in the concentric sphere of radius 0.8" — reported as
// the most challenging of the distributions the authors tried. We reproduce
// it for any dimension, plus a few auxiliary distributions used by tests.

#ifndef DIVERSE_DATA_SYNTHETIC_H_
#define DIVERSE_DATA_SYNTHETIC_H_

#include <cstddef>
#include <cstdint>

#include "core/point.h"
#include "util/rng.h"

namespace diverse {

/// Parameters of the planted-sphere generator.
struct SphereDatasetOptions {
  /// Total number of points.
  size_t n = 1000;
  /// Number of planted far-away points on the unit sphere surface.
  size_t k = 8;
  /// Dimension of the Euclidean space.
  size_t dim = 3;
  /// Radius of the inner ball holding the n-k bulk points.
  double inner_radius = 0.8;
  uint64_t seed = 1;
};

/// Generates the paper's planted-sphere dataset. The k planted points come
/// first, followed by the bulk (shuffle or partition afterwards as needed).
PointSet GenerateSphereDataset(const SphereDatasetOptions& options);

/// A stream over the same distribution that produces points one at a time
/// without materializing the dataset, for large streaming runs. Planted
/// points are emitted at pseudo-random positions of the stream rather than
/// up front (a prefix of planted optima would be unrealistically easy for a
/// streaming algorithm).
class SphereStream {
 public:
  explicit SphereStream(const SphereDatasetOptions& options);

  /// Number of points this stream will produce in total.
  size_t size() const { return options_.n; }

  /// True while points remain.
  bool HasNext() const { return produced_ < options_.n; }

  /// Produces the next point. Requires HasNext().
  Point Next();

 private:
  SphereDatasetOptions options_;
  Rng rng_;
  size_t produced_ = 0;
  size_t planted_emitted_ = 0;
};

/// Uniform points in the unit hypercube [0,1]^dim (test helper).
PointSet GenerateUniformCube(size_t n, size_t dim, uint64_t seed);

/// `centers` well-separated Gaussian blobs in [0,1]^dim with the given
/// standard deviation (test helper for clusterable data).
PointSet GenerateGaussianBlobs(size_t n, size_t centers, size_t dim,
                               double stddev, uint64_t seed);

/// A point uniform on the surface of the radius-`radius` sphere.
Point RandomSpherePoint(Rng& rng, size_t dim, double radius);

/// A point uniform in the ball of the given radius.
Point RandomBallPoint(Rng& rng, size_t dim, double radius);

}  // namespace diverse

#endif  // DIVERSE_DATA_SYNTHETIC_H_
