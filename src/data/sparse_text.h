// Synthetic sparse word-count corpus — the musiXmatch substitute.
//
// The paper's real-world dataset is the musiXmatch lyrics collection:
// 234,363 bag-of-words vectors over the 5,000 most frequent terms, at least
// 10 terms per document, compared under the cosine distance. That dataset
// is not redistributable here, so we generate a corpus with the same
// structural properties (see DESIGN.md §5):
//   * vocabulary of `vocab_size` terms with Zipf-distributed frequencies
//     (natural-language term statistics);
//   * document lengths (distinct terms) power-law distributed with a lower
//     bound of `min_terms`, mirroring the paper's ">= 10 frequent words"
//     filter;
//   * `num_topics` planted topic blocks: each topic owns a disjoint slice of
//     the vocabulary and topic documents draw most terms from their slice,
//     so documents of different topics are nearly orthogonal — guaranteeing
//     a set of far-away points under the cosine distance, the same role the
//     sphere surface plays in the Euclidean generator.

#ifndef DIVERSE_DATA_SPARSE_TEXT_H_
#define DIVERSE_DATA_SPARSE_TEXT_H_

#include <cstddef>
#include <cstdint>

#include "core/point.h"

namespace diverse {

/// Parameters of the synthetic corpus generator.
struct SparseTextOptions {
  /// Number of documents.
  size_t n = 10000;
  /// Vocabulary size (the paper uses the top 5000 terms).
  uint32_t vocab_size = 5000;
  /// Minimum distinct terms per document (the paper filters at 10).
  size_t min_terms = 10;
  /// Maximum distinct terms per document.
  size_t max_terms = 120;
  /// Zipf exponent of the background term distribution.
  double zipf_exponent = 1.1;
  /// Number of planted topics (0 disables topical structure).
  size_t num_topics = 32;
  /// Fraction of documents attached to a topic; the rest are background.
  double topic_fraction = 0.5;
  /// Probability that a term of a topic document comes from the topic's
  /// vocabulary slice (the rest are background noise).
  double topic_term_bias = 0.9;
  /// Fraction of documents that are *near-duplicates* of an earlier document
  /// (slightly perturbed copies — covers, remixes, re-releases in a lyrics
  /// corpus). Near-duplicates give the pairwise-distance distribution the
  /// wide dynamic range real corpora have, which the streaming doubling
  /// algorithm's phase thresholds depend on.
  double duplicate_fraction = 0.15;
  uint64_t seed = 1;
};

/// Generates the corpus as sparse count vectors.
PointSet GenerateSparseTextDataset(const SparseTextOptions& options);

}  // namespace diverse

#endif  // DIVERSE_DATA_SPARSE_TEXT_H_
