// diverse — command-line driver for the diversity maximization library.
//
// Subcommands:
//   solve     pick k diverse points from a dataset file
//   generate  write a synthetic dataset (sphere | cube | text) to a file
//   estimate  estimate the doubling dimension of a dataset
//
// Examples:
//   diverse generate --kind=sphere --n=100000 --k=16 --out=data.bin
//   diverse solve --in=data.bin --problem=remote-edge --k=16
//       --backend=mapreduce --k_prime=64 --partitions=8
//   diverse estimate --in=data.bin --metric=euclidean
//
// Datasets are the library's text (.txt) or binary (.bin, default) formats;
// see data/io.h.

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>

#include "api/solve.h"
#include "comm/socket_engine.h"
#include "core/doubling.h"
#include "core/metric.h"
#include "data/io.h"
#include "data/sparse_text.h"
#include "data/synthetic.h"

namespace diverse {
namespace {

// --key=value flags after the subcommand.
class CliFlags {
 public:
  CliFlags(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) continue;
      size_t eq = arg.find('=');
      if (eq == std::string::npos) {
        values_.insert_or_assign(arg.substr(2), std::string("1"));
      } else {
        values_.insert_or_assign(arg.substr(2, eq - 2), arg.substr(eq + 1));
      }
    }
  }

  std::string Get(const std::string& key, const std::string& def) const {
    auto it = values_.find(key);
    return it == values_.end() ? def : it->second;
  }

  long long GetInt(const std::string& key, long long def) const {
    auto it = values_.find(key);
    return it == values_.end() ? def : std::atoll(it->second.c_str());
  }

 private:
  std::map<std::string, std::string> values_;
};

int Usage() {
  std::fprintf(stderr, R"(usage: diverse <command> [--flags]

commands:
  solve     --in=FILE --problem=remote-edge|remote-clique|remote-star|
            remote-bipartition|remote-tree|remote-cycle --k=N
            [--backend=sequential|streaming|streaming-2pass|mapreduce|
             mapreduce-randomized|mapreduce-generalized|mapreduce-recursive]
            [--k_prime=N] [--partitions=N] [--workers=N]
            [--metric=euclidean|manhattan|cosine|jaccard] [--out=FILE]
            [--screening=0|1]  (fp32 screen-then-certify sweeps, default on)
            [--indexing=0|1]   (cover-tree metric-index tier, default on)
            fault tolerance (MapReduce backends):
            [--max-retries=N]      (task retries beyond the first attempt, default 2)
            [--task-timeout-ms=N]  (straggler budget per attempt; 0 = off)
            [--allow-degraded=0|1] (drop permanently failed partitions, default on)
            [--fault-seed=S --fault-rate-KIND=P ...]  (seeded stochastic faults;
             KIND in crash|empty-output|wrong-output|corrupt-partition|straggler)
            [--fault-spec=round:task:attempt:kind[:param],...]  (exact schedule;
             transport kinds worker-crash|conn-drop|frame-corrupt|reply-delay
             need --transport=socket to be inflicted for real)
            distributed runtime (MapReduce backends):
            [--transport=loopback|socket]  (socket = worker processes, default loopback)
            [--tree-reduce=0|1]    (binary merge tree over core-sets, default off)
            [--heartbeat-ms=N]     (idle-worker liveness probe period; 0 = off)
            [--rpc-deadline-ms=N]  (per-RPC reply deadline, default 30000)
            [--chunk-kb=N]         (streaming ship chunk size; 0 = monolithic frames)
            [--worker-cache-mb=N]  (per-worker partition cache; 0 = no caching)
            [--worker-binary=PATH] (default: diverse_worker next to this binary)
  generate  --kind=sphere|cube|text --n=N --out=FILE
            [--k=planted] [--dim=D] [--vocab=V] [--topics=T] [--seed=S]
            [--format=bin|txt]
  estimate  --in=FILE [--metric=...] [--centers=N] [--sample=N]
)");
  return 2;
}

StatusOr<PointSet> TryLoadAny(const std::string& path) {
  if (path.size() > 4 && path.substr(path.size() - 4) == ".txt") {
    return TryLoadPointsText(path);
  }
  return TryLoadPointsBinary(path);
}

bool SaveAny(const PointSet& pts, const std::string& path,
             const std::string& format) {
  bool text = format == "txt" ||
              (path.size() > 4 && path.substr(path.size() - 4) == ".txt");
  return text ? SavePointsText(pts, path) : SavePointsBinary(pts, path);
}

// The builtin-metric registry (core/metric.h) — one name table shared with
// the socket transport, which ships metric *names* to worker processes.
std::unique_ptr<Metric> MakeMetric(const std::string& name) {
  return MakeMetricByName(name);
}

int RunSolve(const CliFlags& flags) {
  std::string in = flags.Get("in", "");
  if (in.empty()) return Usage();
  StatusOr<PointSet> points = TryLoadAny(in);
  if (!points.ok()) {
    std::fprintf(stderr, "error: %s\n", points.status().ToString().c_str());
    return 1;
  }
  if (points->empty()) {
    std::fprintf(stderr, "error: dataset %s is empty\n", in.c_str());
    return 1;
  }
  auto problem = ParseProblem(flags.Get("problem", "remote-edge"));
  if (!problem.has_value()) {
    std::fprintf(stderr, "error: unknown problem\n");
    return 1;
  }
  bool backend_ok = true;
  Backend backend =
      ParseBackend(flags.Get("backend", "sequential"), &backend_ok);
  if (!backend_ok) {
    std::fprintf(stderr, "error: unknown backend\n");
    return 1;
  }
  auto metric = MakeMetric(flags.Get("metric", "euclidean"));
  if (metric == nullptr) {
    std::fprintf(stderr, "error: unknown metric\n");
    return 1;
  }
  if ((backend == Backend::kStreamingTwoPass ||
       backend == Backend::kMapReduceGeneralized) &&
      !RequiresInjectiveProxies(*problem)) {
    std::fprintf(stderr,
                 "error: backend %s is defined only for remote-clique/"
                 "-star/-bipartition/-tree\n",
                 BackendName(backend).c_str());
    return 1;
  }

  SolveOptions opts;
  opts.problem = *problem;
  opts.backend = backend;
  opts.k = static_cast<size_t>(flags.GetInt("k", 8));
  opts.k_prime = static_cast<size_t>(flags.GetInt("k_prime", 0));
  opts.num_partitions = static_cast<size_t>(flags.GetInt("partitions", 0));
  opts.num_workers = static_cast<size_t>(flags.GetInt("workers", 0));
  opts.seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  opts.screening = flags.GetInt("screening", 1) != 0;
  opts.indexing = flags.GetInt("indexing", 1) != 0;
  opts.max_retries = static_cast<size_t>(flags.GetInt("max-retries", 2));
  opts.task_timeout_ms =
      static_cast<uint64_t>(flags.GetInt("task-timeout-ms", 0));
  opts.allow_degraded = flags.GetInt("allow-degraded", 1) != 0;

  // Fault injection: an explicit --fault-spec schedule, a seeded stochastic
  // layer (--fault-seed + --fault-rate-*), or both.
  FaultInjector faults;
  std::string fault_spec = flags.Get("fault-spec", "");
  if (!fault_spec.empty()) {
    StatusOr<FaultInjector> parsed = FaultInjector::Parse(fault_spec);
    if (!parsed.ok()) {
      std::fprintf(stderr, "error: %s\n", parsed.status().ToString().c_str());
      return 1;
    }
    faults = std::move(*parsed);
  }
  FaultRates rates;
  rates.crash = std::atof(flags.Get("fault-rate-crash", "0").c_str());
  rates.empty_output =
      std::atof(flags.Get("fault-rate-empty-output", "0").c_str());
  rates.wrong_output =
      std::atof(flags.Get("fault-rate-wrong-output", "0").c_str());
  rates.corrupt_partition =
      std::atof(flags.Get("fault-rate-corrupt-partition", "0").c_str());
  rates.straggler = std::atof(flags.Get("fault-rate-straggler", "0").c_str());
  if (rates.crash > 0 || rates.empty_output > 0 || rates.wrong_output > 0 ||
      rates.corrupt_partition > 0 || rates.straggler > 0) {
    faults.SetSeeded(static_cast<uint64_t>(flags.GetInt("fault-seed", 1)),
                     rates);
  }
  if (!faults.empty()) opts.faults = &faults;

  // Distributed runtime: --transport=socket runs MapReduce task compute in
  // a pool of worker processes instead of in-process threads.
  opts.tree_reduce = flags.GetInt("tree-reduce", 0) != 0;
  const std::string transport = flags.Get("transport", "loopback");
  std::unique_ptr<SocketEngine> socket_engine;
  if (transport == "socket") {
    SocketEngineOptions so;
    so.num_workers = opts.num_workers != 0 ? opts.num_workers : 4;
    so.metric = flags.Get("metric", "euclidean");
    so.problem = *problem;
    so.worker_binary = flags.Get("worker-binary", "");
    so.heartbeat_ms = static_cast<uint64_t>(flags.GetInt("heartbeat-ms", 0));
    so.rpc_deadline_ms =
        static_cast<uint64_t>(flags.GetInt("rpc-deadline-ms", 30000));
    so.chunk_bytes =
        static_cast<size_t>(flags.GetInt("chunk-kb", 256)) * 1024;
    so.worker_cache_bytes =
        static_cast<size_t>(flags.GetInt("worker-cache-mb", 64)) << 20;
    socket_engine = std::make_unique<SocketEngine>(so);
    Status healthy = socket_engine->Healthy();
    if (!healthy.ok()) {
      std::fprintf(stderr, "error: %s\n", healthy.ToString().c_str());
      return 1;
    }
    opts.engine = socket_engine.get();
  } else if (transport != "loopback") {
    std::fprintf(stderr, "error: unknown transport '%s' (loopback|socket)\n",
                 transport.c_str());
    return 1;
  }

  StatusOr<SolveResult> solved = TrySolve(*points, *metric, opts);
  if (!solved.ok()) {
    std::fprintf(stderr, "error: %s\n", solved.status().ToString().c_str());
    return 1;
  }
  SolveResult result = std::move(*solved);
  std::printf("n:          %zu\n", points->size());
  std::printf("problem:    %s\n", ProblemName(*problem).c_str());
  std::printf("backend:    %s\n", BackendName(backend).c_str());
  if (socket_engine != nullptr) {
    const SocketEngineStats stats = socket_engine->stats();
    std::printf("transport:  socket (%zu workers, %zu respawns, %zu rpc errors)\n",
                stats.workers_spawned - stats.respawns, stats.respawns,
                stats.rpc_errors);
    std::printf("shipping:   %zu bytes, %zu cache hits / %zu misses, "
                "%.3f s ship / %.3f s reply\n",
                stats.request_bytes_sent, stats.cache_hits, stats.cache_misses,
                stats.ship_seconds, stats.reply_seconds);
  }
  std::printf("solution:   %zu points\n", result.solution.size());
  std::printf("diversity:  %.6f\n", result.diversity);
  std::printf("coreset:    %zu points\n", result.coreset_size);
  std::printf("time:       %.3f s\n", result.seconds);
  if (result.degraded.has_value()) {
    const DegradedResult& d = *result.degraded;
    std::printf("DEGRADED:   %zu partition(s) permanently lost\n",
                d.failed_partitions.size());
    std::printf("  surviving:    %zu / %zu points (%.1f%%)\n",
                d.surviving_points, d.total_points,
                100.0 * d.surviving_fraction);
    std::printf(
        "  guarantee:    within factor %.1f of the optimum over the "
        "surviving points\n",
        d.approx_factor);
  }

  std::string out = flags.Get("out", "");
  if (!out.empty()) {
    if (!SaveAny(result.solution, out, flags.Get("format", "bin"))) {
      std::fprintf(stderr, "error: cannot write %s\n", out.c_str());
      return 1;
    }
    std::printf("solution written to %s\n", out.c_str());
  } else {
    for (const Point& p : result.solution) {
      std::printf("  %s\n", p.ToString().c_str());
    }
  }
  return 0;
}

int RunGenerate(const CliFlags& flags) {
  std::string out = flags.Get("out", "");
  std::string kind = flags.Get("kind", "sphere");
  if (out.empty()) return Usage();
  size_t n = static_cast<size_t>(flags.GetInt("n", 10000));
  uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 1));

  PointSet pts;
  if (kind == "sphere") {
    SphereDatasetOptions o;
    o.n = n;
    o.k = static_cast<size_t>(flags.GetInt("k", 8));
    o.dim = static_cast<size_t>(flags.GetInt("dim", 3));
    o.seed = seed;
    pts = GenerateSphereDataset(o);
  } else if (kind == "cube") {
    pts = GenerateUniformCube(n, static_cast<size_t>(flags.GetInt("dim", 3)),
                              seed);
  } else if (kind == "text") {
    SparseTextOptions o;
    o.n = n;
    o.vocab_size = static_cast<uint32_t>(flags.GetInt("vocab", 5000));
    o.num_topics = static_cast<size_t>(flags.GetInt("topics", 32));
    o.seed = seed;
    pts = GenerateSparseTextDataset(o);
  } else {
    std::fprintf(stderr, "error: unknown kind %s\n", kind.c_str());
    return 1;
  }
  if (!SaveAny(pts, out, flags.Get("format", "bin"))) {
    std::fprintf(stderr, "error: cannot write %s\n", out.c_str());
    return 1;
  }
  std::printf("wrote %zu %s points to %s\n", pts.size(), kind.c_str(),
              out.c_str());
  return 0;
}

int RunEstimate(const CliFlags& flags) {
  std::string in = flags.Get("in", "");
  if (in.empty()) return Usage();
  StatusOr<PointSet> points = TryLoadAny(in);
  if (!points.ok()) {
    std::fprintf(stderr, "error: %s\n", points.status().ToString().c_str());
    return 1;
  }
  if (points->size() < 2) {
    std::fprintf(stderr, "error: dataset %s has fewer than 2 points\n",
                 in.c_str());
    return 1;
  }
  auto metric = MakeMetric(flags.Get("metric", "euclidean"));
  if (metric == nullptr) {
    std::fprintf(stderr, "error: unknown metric\n");
    return 1;
  }
  DoublingEstimateOptions opts;
  opts.num_centers = static_cast<size_t>(flags.GetInt("centers", 32));
  opts.max_sample = static_cast<size_t>(flags.GetInt("sample", 2000));
  DoublingEstimate est = EstimateDoublingDimension(*points, *metric, opts);
  std::printf("points:            %zu\n", points->size());
  std::printf("probes:            %zu\n", est.probes);
  std::printf("worst cover size:  %zu\n", est.worst_cover_size);
  std::printf("doubling dim est:  %.2f\n", est.dimension);
  std::printf("suggested k'/k at eps=0.5 (MapReduce GMM, (8/eps)^D): %.0f\n",
              std::pow(16.0, est.dimension));
  return 0;
}

int Main(int argc, char** argv) {
  if (argc < 2) return Usage();
  std::string cmd = argv[1];
  CliFlags flags(argc, argv, 2);
  if (cmd == "solve") return RunSolve(flags);
  if (cmd == "generate") return RunGenerate(flags);
  if (cmd == "estimate") return RunEstimate(flags);
  return Usage();
}

}  // namespace
}  // namespace diverse

int main(int argc, char** argv) { return diverse::Main(argc, argv); }
