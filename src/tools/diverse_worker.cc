// The worker process of the socket transport: speaks the frame protocol of
// comm/frame.h on the inherited socket fd and executes wire tasks with
// comm/worker_core.h. Spawned by SocketEngine (never run by hand); exits 0
// on a clean shutdown/EOF, 1 on a malformed stream.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "comm/worker_core.h"

int main(int argc, char** argv) {
  // One compute thread per worker: parallelism comes from the pool of
  // processes, and a single-threaded worker keeps per-task CPU accounting
  // honest in the distributed benches.
  ::setenv("DIVERSE_THREADS", "1", /*overwrite=*/0);
  int fd = -1;
  diverse::WorkerLoopOptions options;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--fd=", 5) == 0) {
      fd = std::atoi(argv[i] + 5);
    } else if (std::strncmp(argv[i], "--cache-bytes=", 14) == 0) {
      options.cache_bytes =
          static_cast<size_t>(std::strtoull(argv[i] + 14, nullptr, 10));
    } else if (std::strncmp(argv[i], "--write-deadline-ms=", 20) == 0) {
      options.write_deadline_ms = std::strtoull(argv[i] + 20, nullptr, 10);
    }
  }
  if (fd < 0) {
    std::fprintf(stderr,
                 "diverse_worker: missing --fd=N (this binary is spawned by "
                 "the socket engine, not run directly)\n");
    return 2;
  }
  return diverse::RunWorkerLoop(fd, options);
}
