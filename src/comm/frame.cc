#include "comm/frame.h"

#include <array>
#include <cstdio>
#include <cstring>

namespace diverse {

namespace {

constexpr uint32_t kFrameMagic = 0x44495646;  // "DIVF"

std::array<uint32_t, 256> BuildCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

bool KnownFrameType(uint8_t t) {
  return t >= static_cast<uint8_t>(FrameType::kRequest) &&
         t <= static_cast<uint8_t>(FrameType::kStall);
}

}  // namespace

uint32_t Crc32(std::string_view bytes) {
  static const std::array<uint32_t, 256> table = BuildCrcTable();
  uint32_t c = 0xFFFFFFFFu;
  for (char ch : bytes) {
    c = table[(c ^ static_cast<uint8_t>(ch)) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

void AppendFrame(FrameType type, std::string_view payload, std::string* out) {
  const uint32_t magic = kFrameMagic;
  const uint8_t t = static_cast<uint8_t>(type);
  const uint64_t len = payload.size();
  const uint32_t crc = Crc32(payload);
  out->append(reinterpret_cast<const char*>(&magic), sizeof(magic));
  out->append(reinterpret_cast<const char*>(&t), sizeof(t));
  out->append(reinterpret_cast<const char*>(&len), sizeof(len));
  out->append(reinterpret_cast<const char*>(&crc), sizeof(crc));
  out->append(payload.data(), payload.size());
}

Status TryDecodeFrame(std::string_view buf, Frame* out, size_t* consumed) {
  *consumed = 0;
  if (buf.size() < kFrameHeaderBytes) return OkStatus();
  uint32_t magic;
  uint8_t type;
  uint64_t len;
  uint32_t crc;
  const char* p = buf.data();
  std::memcpy(&magic, p, sizeof(magic));
  p += sizeof(magic);
  std::memcpy(&type, p, sizeof(type));
  p += sizeof(type);
  std::memcpy(&len, p, sizeof(len));
  p += sizeof(len);
  std::memcpy(&crc, p, sizeof(crc));
  p += sizeof(crc);
  if (magic != kFrameMagic) {
    char hex[16];
    std::snprintf(hex, sizeof(hex), "0x%08X", magic);
    return InvalidArgumentError("bad frame magic " + std::string(hex) +
                                " (want DIVF)");
  }
  if (!KnownFrameType(type)) {
    return InvalidArgumentError("unknown frame type " + std::to_string(type));
  }
  if (len > kMaxFramePayload) {
    return InvalidArgumentError("frame payload length " + std::to_string(len) +
                                " exceeds the " +
                                std::to_string(kMaxFramePayload) +
                                "-byte limit");
  }
  if (buf.size() - kFrameHeaderBytes < len) return OkStatus();  // need more
  std::string_view payload(p, static_cast<size_t>(len));
  const uint32_t actual = Crc32(payload);
  if (actual != crc) {
    return DataLossError("frame checksum mismatch (header says " +
                         std::to_string(crc) + ", payload hashes to " +
                         std::to_string(actual) + ")");
  }
  out->type = static_cast<FrameType>(type);
  out->payload.assign(payload.data(), payload.size());
  *consumed = kFrameHeaderBytes + static_cast<size_t>(len);
  return OkStatus();
}

}  // namespace diverse
