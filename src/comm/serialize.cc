#include "comm/serialize.h"

#include <cstring>
#include <utility>

namespace diverse {

namespace {

// Scalar append/read primitives over the same raw little-endian layout the
// io.h binary records use.
template <typename T>
void AppendScalar(T v, std::string* out) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

template <typename T>
bool ReadScalar(ByteReader* in, T* out) {
  return in->Read(out, sizeof(T));
}

void AppendString(const std::string& s, std::string* out) {
  AppendScalar<uint32_t>(static_cast<uint32_t>(s.size()), out);
  out->append(s);
}

Status ReadString(ByteReader* in, std::string* out, const std::string& what) {
  uint32_t len = 0;
  if (!ReadScalar(in, &len) || len > in->remaining()) {
    return DataLossError("truncated " + what + " string");
  }
  out->resize(len);
  if (len > 0 && !in->Read(out->data(), len)) {
    return DataLossError("truncated " + what + " string");
  }
  return OkStatus();
}

constexpr uint8_t kMaxStatusCode = static_cast<uint8_t>(StatusCode::kInternal);
constexpr uint8_t kMaxProblem =
    static_cast<uint8_t>(DiversityProblem::kRemoteCycle);
constexpr uint8_t kMinTaskType = static_cast<uint8_t>(WireTaskType::kCoreset);
constexpr uint8_t kMaxTaskType =
    static_cast<uint8_t>(WireTaskType::kInstantiate);

// Smallest possible point record (tag + dim + nnz), for count-vs-bytes
// sanity checks before reserving.
constexpr uint64_t kMinPointRecordBytes = 9;

}  // namespace

void AppendPointSet(const PointSet& points, std::string* out) {
  AppendScalar<uint64_t>(points.size(), out);
  for (const Point& p : points) AppendPointRecord(p, out);
}

StatusOr<PointSet> TryReadPointSet(ByteReader* in, const std::string& what) {
  uint64_t count = 0;
  if (!ReadScalar(in, &count)) {
    return DataLossError("truncated " + what + " count");
  }
  if (count > in->remaining() / kMinPointRecordBytes) {
    return InvalidArgumentError(what + " claims " + std::to_string(count) +
                                " points but only " +
                                std::to_string(in->remaining()) +
                                " payload bytes remain");
  }
  PointSet points;
  points.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    StatusOr<Point> p = TryReadPointRecord(
        in, "point " + std::to_string(i) + " of " + what);
    if (!p.ok()) return p.status();
    points.push_back(std::move(*p));
  }
  return points;
}

void AppendGenCoreset(const GeneralizedCoreset& gen, std::string* out) {
  AppendScalar<uint64_t>(gen.size(), out);
  for (const WeightedPoint& wp : gen.entries()) {
    AppendScalar<uint64_t>(wp.multiplicity, out);
    AppendPointRecord(wp.point, out);
  }
}

StatusOr<GeneralizedCoreset> TryReadGenCoreset(ByteReader* in,
                                               const std::string& what) {
  uint64_t count = 0;
  if (!ReadScalar(in, &count)) {
    return DataLossError("truncated " + what + " count");
  }
  if (count > in->remaining() / (sizeof(uint64_t) + kMinPointRecordBytes)) {
    return InvalidArgumentError(what + " claims " + std::to_string(count) +
                                " entries but only " +
                                std::to_string(in->remaining()) +
                                " payload bytes remain");
  }
  GeneralizedCoreset gen;
  for (uint64_t i = 0; i < count; ++i) {
    const std::string where = "entry " + std::to_string(i) + " of " + what;
    uint64_t multiplicity = 0;
    if (!ReadScalar(in, &multiplicity)) {
      return DataLossError("truncated multiplicity at " + where);
    }
    if (multiplicity == 0) {
      return InvalidArgumentError("zero multiplicity at " + where);
    }
    StatusOr<Point> p = TryReadPointRecord(in, where);
    if (!p.ok()) return p.status();
    gen.Add(std::move(*p), multiplicity);
  }
  return gen;
}

std::string EncodeWireRequest(const WireRequest& request) {
  std::string out;
  AppendScalar<uint8_t>(static_cast<uint8_t>(request.type), &out);
  AppendString(request.metric, &out);
  AppendScalar<uint8_t>(static_cast<uint8_t>(request.problem), &out);
  AppendString(request.round, &out);
  AppendScalar<uint64_t>(request.task, &out);
  AppendScalar<uint64_t>(request.attempt, &out);
  AppendScalar<uint64_t>(request.delay_ms, &out);
  AppendScalar<uint64_t>(request.k, &out);
  AppendScalar<uint64_t>(request.k_prime, &out);
  AppendScalar<uint64_t>(request.delegates, &out);
  AppendScalar<uint8_t>(request.extended ? 1 : 0, &out);
  AppendScalar<double>(request.range, &out);
  AppendPointSet(request.points, &out);
  AppendPointSet(request.points2, &out);
  AppendGenCoreset(request.gen, &out);
  return out;
}

StatusOr<WireRequest> TryDecodeWireRequest(std::string_view payload) {
  ByteReader in(payload);
  WireRequest req;
  uint8_t type = 0, problem = 0, extended = 0;
  if (!ReadScalar(&in, &type)) {
    return DataLossError("truncated wire request header");
  }
  if (type < kMinTaskType || type > kMaxTaskType) {
    return InvalidArgumentError("unknown wire task type " +
                                std::to_string(type));
  }
  req.type = static_cast<WireTaskType>(type);
  DIVERSE_RETURN_IF_ERROR(ReadString(&in, &req.metric, "metric name"));
  if (!ReadScalar(&in, &problem)) {
    return DataLossError("truncated wire request problem");
  }
  if (problem > kMaxProblem) {
    return InvalidArgumentError("unknown diversity problem id " +
                                std::to_string(problem));
  }
  req.problem = static_cast<DiversityProblem>(problem);
  DIVERSE_RETURN_IF_ERROR(ReadString(&in, &req.round, "round name"));
  if (!ReadScalar(&in, &req.task) || !ReadScalar(&in, &req.attempt) ||
      !ReadScalar(&in, &req.delay_ms) || !ReadScalar(&in, &req.k) ||
      !ReadScalar(&in, &req.k_prime) || !ReadScalar(&in, &req.delegates) ||
      !ReadScalar(&in, &extended) || !ReadScalar(&in, &req.range)) {
    return DataLossError("truncated wire request envelope");
  }
  req.extended = extended != 0;
  StatusOr<PointSet> points = TryReadPointSet(&in, "request points");
  if (!points.ok()) return points.status();
  req.points = std::move(*points);
  StatusOr<PointSet> points2 = TryReadPointSet(&in, "request points2");
  if (!points2.ok()) return points2.status();
  req.points2 = std::move(*points2);
  StatusOr<GeneralizedCoreset> gen =
      TryReadGenCoreset(&in, "request generalized core-set");
  if (!gen.ok()) return gen.status();
  req.gen = std::move(*gen);
  if (in.remaining() != 0) {
    return InvalidArgumentError(std::to_string(in.remaining()) +
                                " trailing bytes after wire request");
  }
  return req;
}

std::string EncodeWireReply(const WireReply& reply) {
  std::string out;
  AppendScalar<uint8_t>(static_cast<uint8_t>(reply.type), &out);
  AppendScalar<uint8_t>(static_cast<uint8_t>(reply.status.code()), &out);
  AppendString(reply.status.message(), &out);
  AppendScalar<double>(reply.range, &out);
  AppendPointSet(reply.points, &out);
  AppendGenCoreset(reply.gen, &out);
  return out;
}

StatusOr<WireReply> TryDecodeWireReply(std::string_view payload) {
  ByteReader in(payload);
  WireReply reply;
  uint8_t type = 0, code = 0;
  std::string message;
  if (!ReadScalar(&in, &type)) {
    return DataLossError("truncated wire reply header");
  }
  if (type < kMinTaskType || type > kMaxTaskType) {
    return InvalidArgumentError("unknown wire task type " +
                                std::to_string(type) + " in reply");
  }
  reply.type = static_cast<WireTaskType>(type);
  if (!ReadScalar(&in, &code)) {
    return DataLossError("truncated wire reply status");
  }
  if (code > kMaxStatusCode) {
    return InvalidArgumentError("unknown status code " + std::to_string(code) +
                                " in wire reply");
  }
  DIVERSE_RETURN_IF_ERROR(ReadString(&in, &message, "reply status message"));
  reply.status = code == 0 ? OkStatus()
                           : Status(static_cast<StatusCode>(code),
                                    std::move(message));
  if (!ReadScalar(&in, &reply.range)) {
    return DataLossError("truncated wire reply range");
  }
  StatusOr<PointSet> points = TryReadPointSet(&in, "reply points");
  if (!points.ok()) return points.status();
  reply.points = std::move(*points);
  StatusOr<GeneralizedCoreset> gen =
      TryReadGenCoreset(&in, "reply generalized core-set");
  if (!gen.ok()) return gen.status();
  reply.gen = std::move(*gen);
  if (in.remaining() != 0) {
    return InvalidArgumentError(std::to_string(in.remaining()) +
                                " trailing bytes after wire reply");
  }
  return reply;
}

}  // namespace diverse
