#include "comm/serialize.h"

#include <algorithm>
#include <cstring>
#include <utility>

namespace diverse {

namespace {

// Scalar append/read primitives over the same raw little-endian layout the
// io.h binary records use.
template <typename T>
void AppendScalar(T v, std::string* out) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

template <typename T>
bool ReadScalar(ByteReader* in, T* out) {
  return in->Read(out, sizeof(T));
}

void AppendString(const std::string& s, std::string* out) {
  AppendScalar<uint32_t>(static_cast<uint32_t>(s.size()), out);
  out->append(s);
}

Status ReadString(ByteReader* in, std::string* out, const std::string& what) {
  uint32_t len = 0;
  if (!ReadScalar(in, &len) || len > in->remaining()) {
    return DataLossError("truncated " + what + " string");
  }
  out->resize(len);
  if (len > 0 && !in->Read(out->data(), len)) {
    return DataLossError("truncated " + what + " string");
  }
  return OkStatus();
}

constexpr uint8_t kMaxStatusCode = static_cast<uint8_t>(StatusCode::kInternal);
constexpr uint8_t kMaxProblem =
    static_cast<uint8_t>(DiversityProblem::kRemoteCycle);
constexpr uint8_t kMinTaskType = static_cast<uint8_t>(WireTaskType::kCoreset);
constexpr uint8_t kMaxTaskType =
    static_cast<uint8_t>(WireTaskType::kInstantiate);

// Smallest possible point record (tag + dim + nnz), for count-vs-bytes
// sanity checks before reserving.
constexpr uint64_t kMinPointRecordBytes = 9;

// Wire request flag bits (the u8 after the fingerprint).
constexpr uint8_t kFlagPointsByRef = 0x01;
constexpr uint8_t kFlagCacheInsert = 0x02;
constexpr uint8_t kKnownRequestFlags = kFlagPointsByRef | kFlagCacheInsert;

// splitmix64-style word mixer: 3 multiplies per 8-byte lane keeps
// FingerprintPoints far cheaper than serializing the same bytes, which is
// what makes the warm-cache ship path a win and not a wash.
uint64_t MixWord(uint64_t h, uint64_t w) {
  uint64_t x = h ^ (w + 0x9E3779B97F4A7C15ULL);
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

// Hashes `bytes` 8 bytes at a time (tail zero-padded into one lane).
uint64_t MixBytes(uint64_t h, const void* data, size_t bytes) {
  const char* p = static_cast<const char*>(data);
  size_t i = 0;
  for (; i + 8 <= bytes; i += 8) {
    uint64_t w;
    std::memcpy(&w, p + i, 8);
    h = MixWord(h, w);
  }
  if (i < bytes) {
    uint64_t w = 0;
    std::memcpy(&w, p + i, bytes - i);
    h = MixWord(h, w ^ (uint64_t{bytes - i} << 56));
  }
  return h;
}

}  // namespace

uint64_t FingerprintPoints(const PointSet& points) {
  uint64_t h = MixWord(0xD1BE45E5EED5EEDULL, points.size());
  for (const Point& p : points) {
    const uint64_t header = (uint64_t{p.is_sparse() ? 1u : 0u} << 48) ^
                            (uint64_t{static_cast<uint32_t>(p.dim())} << 16) ^
                            uint64_t{static_cast<uint32_t>(p.nnz())};
    h = MixWord(h, header);
    if (p.is_sparse()) {
      const std::vector<uint32_t>& idx = p.sparse_indices();
      const std::vector<float>& val = p.sparse_values();
      h = MixBytes(h, idx.data(), idx.size() * sizeof(uint32_t));
      h = MixBytes(h, val.data(), val.size() * sizeof(float));
    } else {
      const std::vector<float>& val = p.dense_values();
      h = MixBytes(h, val.data(), val.size() * sizeof(float));
    }
  }
  // 0 is the "untagged" sentinel in WireRequest; remap the (2^-64) hit.
  return h == 0 ? 0x9E3779B97F4A7C15ULL : h;
}

size_t ApproxPointSetBytes(const PointSet& points) {
  size_t bytes = sizeof(PointSet) + points.capacity() * sizeof(Point);
  for (const Point& p : points) {
    if (p.is_sparse()) {
      bytes += p.sparse_indices().size() * sizeof(uint32_t) +
               p.sparse_values().size() * sizeof(float);
    } else {
      bytes += p.dense_values().size() * sizeof(float);
    }
  }
  return bytes;
}

void AppendPointSet(const PointSet& points, std::string* out) {
  AppendScalar<uint64_t>(points.size(), out);
  for (const Point& p : points) AppendPointRecord(p, out);
}

StatusOr<PointSet> TryReadPointSet(ByteReader* in, const std::string& what) {
  uint64_t count = 0;
  if (!ReadScalar(in, &count)) {
    return DataLossError("truncated " + what + " count");
  }
  if (count > in->remaining() / kMinPointRecordBytes) {
    return InvalidArgumentError(what + " claims " + std::to_string(count) +
                                " points but only " +
                                std::to_string(in->remaining()) +
                                " payload bytes remain");
  }
  PointSet points;
  points.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    StatusOr<Point> p = TryReadPointRecord(
        in, "point " + std::to_string(i) + " of " + what);
    if (!p.ok()) return p.status();
    points.push_back(std::move(*p));
  }
  return points;
}

void AppendGenCoreset(const GeneralizedCoreset& gen, std::string* out) {
  AppendScalar<uint64_t>(gen.size(), out);
  for (const WeightedPoint& wp : gen.entries()) {
    AppendScalar<uint64_t>(wp.multiplicity, out);
    AppendPointRecord(wp.point, out);
  }
}

StatusOr<GeneralizedCoreset> TryReadGenCoreset(ByteReader* in,
                                               const std::string& what) {
  uint64_t count = 0;
  if (!ReadScalar(in, &count)) {
    return DataLossError("truncated " + what + " count");
  }
  if (count > in->remaining() / (sizeof(uint64_t) + kMinPointRecordBytes)) {
    return InvalidArgumentError(what + " claims " + std::to_string(count) +
                                " entries but only " +
                                std::to_string(in->remaining()) +
                                " payload bytes remain");
  }
  GeneralizedCoreset gen;
  for (uint64_t i = 0; i < count; ++i) {
    const std::string where = "entry " + std::to_string(i) + " of " + what;
    uint64_t multiplicity = 0;
    if (!ReadScalar(in, &multiplicity)) {
      return DataLossError("truncated multiplicity at " + where);
    }
    if (multiplicity == 0) {
      return InvalidArgumentError("zero multiplicity at " + where);
    }
    StatusOr<Point> p = TryReadPointRecord(in, where);
    if (!p.ok()) return p.status();
    gen.Add(std::move(*p), multiplicity);
  }
  return gen;
}

std::string EncodeWireRequest(const WireRequest& request,
                              const PointSet* points_override) {
  std::string out;
  AppendScalar<uint8_t>(static_cast<uint8_t>(request.type), &out);
  AppendString(request.metric, &out);
  AppendScalar<uint8_t>(static_cast<uint8_t>(request.problem), &out);
  AppendString(request.round, &out);
  AppendScalar<uint64_t>(request.task, &out);
  AppendScalar<uint64_t>(request.attempt, &out);
  AppendScalar<uint64_t>(request.delay_ms, &out);
  AppendScalar<uint64_t>(request.k, &out);
  AppendScalar<uint64_t>(request.k_prime, &out);
  AppendScalar<uint64_t>(request.delegates, &out);
  AppendScalar<uint8_t>(request.extended ? 1 : 0, &out);
  AppendScalar<double>(request.range, &out);
  AppendScalar<uint64_t>(request.points_fingerprint, &out);
  uint8_t flags = 0;
  if (request.points_by_ref) flags |= kFlagPointsByRef;
  if (request.cache_insert) flags |= kFlagCacheInsert;
  AppendScalar<uint8_t>(flags, &out);
  AppendScalar<uint64_t>(request.evict_fingerprint, &out);
  if (!request.points_by_ref) {
    AppendPointSet(points_override != nullptr ? *points_override
                                              : request.points,
                   &out);
  }
  AppendPointSet(request.points2, &out);
  AppendGenCoreset(request.gen, &out);
  return out;
}

Status StreamingRequestDecoder::Advance(bool final) {
  for (;;) {
    std::string_view rest = std::string_view(buf_).substr(pos_);
    switch (stage_) {
      case Stage::kEnvelope: {
        ByteReader in(rest);
        WireRequest req;
        uint8_t type = 0, problem = 0, extended = 0, flags = 0;
        if (!ReadScalar(&in, &type)) {
          if (final) return DataLossError("truncated wire request header");
          return OkStatus();
        }
        if (type < kMinTaskType || type > kMaxTaskType) {
          return InvalidArgumentError("unknown wire task type " +
                                      std::to_string(type));
        }
        req.type = static_cast<WireTaskType>(type);
        // String reads distinguish "length field present but bytes still
        // in flight" (wait) from real truncation (only final can tell).
        for (auto* field : {&req.metric, &req.round}) {
          const char* what = field == &req.metric ? "metric" : "round";
          uint32_t len = 0;
          if (!ReadScalar(&in, &len) || len > in.remaining()) {
            if (final) {
              return DataLossError("truncated " + std::string(what) +
                                   " name string");
            }
            return OkStatus();
          }
          field->resize(len);
          if (len > 0 && !in.Read(field->data(), len)) {
            if (final) {
              return DataLossError("truncated " + std::string(what) +
                                   " name string");
            }
            return OkStatus();
          }
          if (field == &req.metric) {
            if (!ReadScalar(&in, &problem)) {
              if (final) {
                return DataLossError("truncated wire request problem");
              }
              return OkStatus();
            }
            if (problem > kMaxProblem) {
              return InvalidArgumentError("unknown diversity problem id " +
                                          std::to_string(problem));
            }
            req.problem = static_cast<DiversityProblem>(problem);
          }
        }
        if (!ReadScalar(&in, &req.task) || !ReadScalar(&in, &req.attempt) ||
            !ReadScalar(&in, &req.delay_ms) || !ReadScalar(&in, &req.k) ||
            !ReadScalar(&in, &req.k_prime) ||
            !ReadScalar(&in, &req.delegates) || !ReadScalar(&in, &extended) ||
            !ReadScalar(&in, &req.range) ||
            !ReadScalar(&in, &req.points_fingerprint) ||
            !ReadScalar(&in, &flags) ||
            !ReadScalar(&in, &req.evict_fingerprint)) {
          if (final) return DataLossError("truncated wire request envelope");
          return OkStatus();
        }
        if ((flags & ~kKnownRequestFlags) != 0) {
          return InvalidArgumentError("unknown wire request flags " +
                                      std::to_string(flags));
        }
        req.extended = extended != 0;
        req.points_by_ref = (flags & kFlagPointsByRef) != 0;
        req.cache_insert = (flags & kFlagCacheInsert) != 0;
        pos_ += rest.size() - in.remaining();
        req_ = std::move(req);
        have_count_ = false;
        // A by-ref request carries no points section at all.
        stage_ = req_.points_by_ref ? Stage::kPoints2 : Stage::kPoints;
        continue;
      }
      case Stage::kPoints:
      case Stage::kPoints2: {
        const bool first = stage_ == Stage::kPoints;
        const char* what = first ? "request points" : "request points2";
        PointSet* out = first ? &req_.points : &req_.points2;
        if (!have_count_) {
          ByteReader in(rest);
          uint64_t count = 0;
          if (!ReadScalar(&in, &count)) {
            if (final) {
              return DataLossError("truncated " + std::string(what) +
                                   " count");
            }
            return OkStatus();
          }
          pos_ += sizeof(uint64_t);
          have_count_ = true;
          want_ = count;
          got_ = 0;
          // Reserve conservatively: the count is untrusted until the
          // records actually arrive.
          out->reserve(static_cast<size_t>(
              std::min<uint64_t>(count, uint64_t{1} << 16)));
          continue;
        }
        if (got_ == want_) {
          stage_ = first ? Stage::kPoints2 : Stage::kGen;
          have_count_ = false;
          continue;
        }
        if (final && want_ - got_ > rest.size() / kMinPointRecordBytes) {
          return InvalidArgumentError(
              std::string(what) + " claims " + std::to_string(want_) +
              " points but only " + std::to_string(rest.size()) +
              " payload bytes remain");
        }
        ByteReader in(rest);
        StatusOr<Point> p = TryReadPointRecord(
            &in, "point " + std::to_string(got_) + " of " + what);
        if (!p.ok()) {
          // Mid-stream a short record is indistinguishable from one whose
          // tail is still in flight; only the final pass may condemn it.
          if (final) return p.status();
          return OkStatus();
        }
        pos_ += rest.size() - in.remaining();
        out->push_back(std::move(*p));
        ++got_;
        continue;
      }
      case Stage::kGen: {
        const char* what = "request generalized core-set";
        if (!have_count_) {
          ByteReader in(rest);
          uint64_t count = 0;
          if (!ReadScalar(&in, &count)) {
            if (final) {
              return DataLossError("truncated " + std::string(what) +
                                   " count");
            }
            return OkStatus();
          }
          pos_ += sizeof(uint64_t);
          have_count_ = true;
          want_ = count;
          got_ = 0;
          continue;
        }
        if (got_ == want_) {
          stage_ = Stage::kDone;
          continue;
        }
        if (final && want_ - got_ >
                         rest.size() / (sizeof(uint64_t) +
                                        kMinPointRecordBytes)) {
          return InvalidArgumentError(
              std::string(what) + " claims " + std::to_string(want_) +
              " entries but only " + std::to_string(rest.size()) +
              " payload bytes remain");
        }
        const std::string where =
            "entry " + std::to_string(got_) + " of " + what;
        ByteReader in(rest);
        uint64_t multiplicity = 0;
        if (!ReadScalar(&in, &multiplicity)) {
          if (final) return DataLossError("truncated multiplicity at " + where);
          return OkStatus();
        }
        if (multiplicity == 0) {
          // The 8 bytes are present: this is corruption, certain even
          // mid-stream.
          return InvalidArgumentError("zero multiplicity at " + where);
        }
        StatusOr<Point> p = TryReadPointRecord(&in, where);
        if (!p.ok()) {
          if (final) return p.status();
          return OkStatus();  // roll back the multiplicity read too
        }
        pos_ += rest.size() - in.remaining();
        req_.gen.Add(std::move(*p), multiplicity);
        ++got_;
        continue;
      }
      case Stage::kDone: {
        if (rest.empty()) return OkStatus();
        if (final) {
          return InvalidArgumentError(std::to_string(rest.size()) +
                                      " trailing bytes after wire request");
        }
        return OkStatus();  // Finish() rejects whatever accumulates here
      }
    }
  }
}

Status StreamingRequestDecoder::Feed(std::string_view bytes) {
  if (!error_.ok()) return error_;
  // Compact the consumed prefix before it dominates the buffer.
  if (pos_ > (size_t{1} << 20) && pos_ > buf_.size() / 2) {
    buf_.erase(0, pos_);
    pos_ = 0;
  }
  buf_.append(bytes.data(), bytes.size());
  error_ = Advance(/*final=*/false);
  return error_;
}

StatusOr<WireRequest> StreamingRequestDecoder::Finish() {
  if (!error_.ok()) return error_;
  error_ = Advance(/*final=*/true);
  if (!error_.ok()) return error_;
  return std::move(req_);
}

StatusOr<WireRequest> TryDecodeWireRequest(std::string_view payload) {
  StreamingRequestDecoder decoder;
  const Status fed = decoder.Feed(payload);
  if (!fed.ok()) return fed;
  return decoder.Finish();
}

std::string EncodeWireReply(const WireReply& reply) {
  std::string out;
  AppendScalar<uint8_t>(static_cast<uint8_t>(reply.type), &out);
  AppendScalar<uint8_t>(static_cast<uint8_t>(reply.status.code()), &out);
  AppendString(reply.status.message(), &out);
  AppendScalar<double>(reply.range, &out);
  AppendScalar<uint8_t>(reply.cache_miss ? 1 : 0, &out);
  AppendPointSet(reply.points, &out);
  AppendGenCoreset(reply.gen, &out);
  return out;
}

StatusOr<WireReply> TryDecodeWireReply(std::string_view payload) {
  ByteReader in(payload);
  WireReply reply;
  uint8_t type = 0, code = 0;
  std::string message;
  if (!ReadScalar(&in, &type)) {
    return DataLossError("truncated wire reply header");
  }
  if (type < kMinTaskType || type > kMaxTaskType) {
    return InvalidArgumentError("unknown wire task type " +
                                std::to_string(type) + " in reply");
  }
  reply.type = static_cast<WireTaskType>(type);
  if (!ReadScalar(&in, &code)) {
    return DataLossError("truncated wire reply status");
  }
  if (code > kMaxStatusCode) {
    return InvalidArgumentError("unknown status code " + std::to_string(code) +
                                " in wire reply");
  }
  DIVERSE_RETURN_IF_ERROR(ReadString(&in, &message, "reply status message"));
  reply.status = code == 0 ? OkStatus()
                           : Status(static_cast<StatusCode>(code),
                                    std::move(message));
  if (!ReadScalar(&in, &reply.range)) {
    return DataLossError("truncated wire reply range");
  }
  uint8_t cache_miss = 0;
  if (!ReadScalar(&in, &cache_miss)) {
    return DataLossError("truncated wire reply cache-miss flag");
  }
  if (cache_miss > 1) {
    return InvalidArgumentError("wire reply cache-miss flag is " +
                                std::to_string(cache_miss) +
                                " (must be 0 or 1)");
  }
  reply.cache_miss = cache_miss != 0;
  StatusOr<PointSet> points = TryReadPointSet(&in, "reply points");
  if (!points.ok()) return points.status();
  reply.points = std::move(*points);
  StatusOr<GeneralizedCoreset> gen =
      TryReadGenCoreset(&in, "reply generalized core-set");
  if (!gen.ok()) return gen.status();
  reply.gen = std::move(*gen);
  if (in.remaining() != 0) {
    return InvalidArgumentError(std::to_string(in.remaining()) +
                                " trailing bytes after wire reply");
  }
  return reply;
}

}  // namespace diverse
