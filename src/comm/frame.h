// The wire-frame layer of the distributed runtime: every message between
// the driver and a worker process is one length-prefixed, checksummed
// frame, so a truncated write, a corrupted byte or a garbage peer is a
// diagnosable Status instead of a desynchronized stream.
//
// Layout (little-endian, packed):
//   magic        u32   0x44495646 ("DIVF")
//   type         u8    FrameType
//   payload_len  u64   bytes of payload that follow the header
//   payload_crc  u32   CRC-32 (IEEE 802.3) of the payload bytes
//   payload      payload_len bytes
//
// The decoder is incremental: feed it whatever bytes have arrived and it
// reports "frame complete", "need more bytes", or "malformed" (bad magic,
// impossible length, checksum mismatch). Malformed means the stream can no
// longer be trusted — the transport kills and respawns the worker rather
// than resynchronizing. Fuzzed in tests/fuzz/frame_fuzz.cc.

#ifndef DIVERSE_COMM_FRAME_H_
#define DIVERSE_COMM_FRAME_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "util/status.h"

namespace diverse {

/// What a frame carries.
enum class FrameType : uint8_t {
  /// Driver -> worker: one serialized wire task (comm/serialize.h).
  kRequest = 1,
  /// Worker -> driver: the serialized result (or error) of a request.
  kReply = 2,
  /// Driver -> worker: liveness probe.
  kHeartbeat = 3,
  /// Worker -> driver: liveness answer.
  kHeartbeatAck = 4,
  /// Driver -> worker: drain and exit 0.
  kShutdown = 5,
  /// Driver -> worker: one non-final slice of a chunked wire request. The
  /// worker feeds each slice to its streaming decoder as it arrives, so
  /// deserialization overlaps the remaining chunks' flight time.
  kRequestChunk = 6,
  /// Driver -> worker: the final slice of a chunked wire request; the
  /// reassembled payload is exactly one kRequest payload.
  kRequestLast = 7,
  /// Driver -> worker (tests only): sleep `param` ms (u64 payload) without
  /// reading the socket — the deterministic stalled-reader used to prove
  /// the write deadline fires instead of hanging the driver.
  kStall = 8,
};

/// One decoded frame.
struct Frame {
  FrameType type = FrameType::kRequest;
  std::string payload;
};

/// Frames larger than this are rejected as malformed before any allocation:
/// a corrupted length field must not translate into a huge buffer.
inline constexpr uint64_t kMaxFramePayload = uint64_t{1} << 30;

/// Frame header size in bytes (magic + type + payload_len + payload_crc).
inline constexpr size_t kFrameHeaderBytes = 4 + 1 + 8 + 4;

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) of `bytes`.
/// Software table implementation — no hardware or library dependency.
uint32_t Crc32(std::string_view bytes);

/// Appends the complete frame (header + payload) for `type` to `*out`.
void AppendFrame(FrameType type, std::string_view payload, std::string* out);

/// Incremental decode of the frame at the front of `buf`:
///   * OK with *consumed > 0  — a complete, checksum-verified frame was
///     decoded into *out; drop *consumed bytes from the front of buf.
///   * OK with *consumed == 0 — buf holds a valid prefix; read more bytes.
///   * error                  — the stream is malformed (kInvalidArgument:
///     bad magic, unknown type, payload_len > kMaxFramePayload;
///     kDataLoss: checksum mismatch). The connection cannot be re-synced.
DIVERSE_MUST_USE Status TryDecodeFrame(std::string_view buf, Frame* out,
                                       size_t* consumed);

}  // namespace diverse

#endif  // DIVERSE_COMM_FRAME_H_
