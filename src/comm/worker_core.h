// The worker-side execution core of the distributed runtime: decode one
// wire request, run the matching Compute* task body (comm/comm.h) on a
// metric resolved by name, and encode the reply. Shared by the worker
// binary (src/tools/diverse_worker.cc) and tests that exercise the wire
// path without forking — the single definition is what keeps remote
// results bit-identical to loopback.
//
// This layer also owns the worker-side partition cache: the driver tags a
// shipped partition with its content fingerprint (cache_insert), later
// requests name the fingerprint instead of re-shipping the bytes
// (points_by_ref), and a miss comes back as kNotFound + cache_miss so the
// driver can fall back to a full ship. Cached and shipped partitions
// decode to identical PointSets, so task results are bit-identical either
// way — the invariant tests/comm_cache_test.cc pins.

#ifndef DIVERSE_COMM_WORKER_CORE_H_
#define DIVERSE_COMM_WORKER_CORE_H_

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>

#include "comm/serialize.h"

namespace diverse {

/// A bytes-bounded LRU of deserialized partitions, keyed by their content
/// fingerprint (FingerprintPoints). Entries are shared_ptr so a task can
/// keep computing on a partition that a concurrent insert evicts. The
/// worker process is single-threaded, so the cache is not synchronized.
class WorkerPartitionCache {
 public:
  /// `capacity_bytes` bounds the sum of ApproxPointSetBytes over resident
  /// entries; 0 disables caching (every Lookup misses, Insert stores
  /// nothing).
  explicit WorkerPartitionCache(size_t capacity_bytes)
      : capacity_(capacity_bytes) {}

  /// Returns the cached partition and marks it most-recently-used, or
  /// nullptr on a miss.
  std::shared_ptr<const PointSet> Lookup(uint64_t fingerprint);

  /// Stores `points` under `fingerprint`, evicting least-recently-used
  /// entries until it fits, and returns the (now shared) partition. A
  /// partition larger than the whole capacity is returned without being
  /// stored; an already-present fingerprint is touched and its resident
  /// copy returned (same fingerprint = same content).
  std::shared_ptr<const PointSet> Insert(uint64_t fingerprint,
                                         PointSet points);

  /// Drops the entry if present (the cache-evict fault). Returns whether
  /// anything was evicted.
  bool Evict(uint64_t fingerprint);

  size_t entries() const { return lru_.size(); }
  size_t size_bytes() const { return size_bytes_; }
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  uint64_t evictions() const { return evictions_; }

 private:
  struct Entry {
    uint64_t fingerprint = 0;
    std::shared_ptr<const PointSet> points;
    size_t bytes = 0;
  };

  size_t capacity_;
  size_t size_bytes_ = 0;
  std::list<Entry> lru_;  // most-recently-used at the front
  std::unordered_map<uint64_t, std::list<Entry>::iterator> index_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
};

/// Executes one decoded wire request against `cache` (nullable = no
/// caching) and returns the reply. Handles the cache protocol before any
/// compute: evict_fingerprint is applied first; a points_by_ref request
/// that misses returns kNotFound with cache_miss set (and skips the task
/// body entirely); a cache_insert ship is verified against its claimed
/// fingerprint (kDataLoss "partition fingerprint mismatch" on corruption)
/// and then inserted. `delay_ms` is NOT honored here (sleeping is the
/// worker loop's job, so tests can run this synchronously). Takes the
/// request by value because the points may be moved into the cache.
WireReply ExecuteWireRequest(WireRequest request, WorkerPartitionCache* cache);

/// Executes the wire task in `request_payload` and returns the encoded
/// reply payload. Never throws and never aborts on malformed input: decode
/// failures, unknown metric names and task errors all come back as an
/// encoded WireReply carrying the error Status. `cache` as above.
std::string ExecuteWireTask(std::string_view request_payload,
                            WorkerPartitionCache* cache = nullptr);

/// Knobs of the worker main loop, set by driver-passed command-line flags
/// (src/tools/diverse_worker.cc).
struct WorkerLoopOptions {
  /// Partition-cache budget in bytes; 0 disables the cache (by-ref
  /// requests then always miss and the driver falls back to full ships).
  size_t cache_bytes = 0;
  /// Budget for writing one reply back to the driver; 0 = no deadline.
  /// A reply the driver stops draining fails the write instead of hanging
  /// the worker forever, and the loop exits (driver sees EOF -> retry).
  uint64_t write_deadline_ms = 30000;
};

/// The worker process main loop: reads frames from `fd` (switched to
/// non-blocking, poll-driven), answers kHeartbeat with kHeartbeatAck,
/// executes kRequest payloads (honoring `delay_ms`), feeds kRequestChunk
/// slices to a streaming decoder so deserialization overlaps the chunks
/// still in flight (kRequestLast completes and executes), sleeps without
/// reading on kStall (the deterministic stalled-reader fixture), and
/// returns 0 on kShutdown or EOF, 1 on a malformed stream or write
/// failure. Runs until the driver closes the connection.
int RunWorkerLoop(int fd, const WorkerLoopOptions& options);
int RunWorkerLoop(int fd);

}  // namespace diverse

#endif  // DIVERSE_COMM_WORKER_CORE_H_
