// The worker-side execution core of the distributed runtime: decode one
// wire request, run the matching Compute* task body (comm/comm.h) on a
// metric resolved by name, and encode the reply. Shared by the worker
// binary (src/tools/diverse_worker.cc) and tests that exercise the wire
// path without forking — the single definition is what keeps remote
// results bit-identical to loopback.

#ifndef DIVERSE_COMM_WORKER_CORE_H_
#define DIVERSE_COMM_WORKER_CORE_H_

#include <string>
#include <string_view>

#include "comm/serialize.h"

namespace diverse {

/// Executes the wire task in `request_payload` and returns the encoded
/// reply payload. Never throws and never aborts on malformed input: decode
/// failures, unknown metric names and task errors all come back as an
/// encoded WireReply carrying the error Status. `delay_ms` in the request
/// is NOT honored here (sleeping is the worker loop's job, so tests can
/// run this synchronously).
std::string ExecuteWireTask(std::string_view request_payload);

/// The worker process main loop: reads frames from `fd`, answers
/// kHeartbeat with kHeartbeatAck, executes kRequest payloads (honoring
/// `delay_ms`), and returns 0 on kShutdown or EOF, 1 on a malformed stream
/// or write failure. Runs until the driver closes the connection.
int RunWorkerLoop(int fd);

}  // namespace diverse

#endif  // DIVERSE_COMM_WORKER_CORE_H_
