#include "comm/socket_engine.h"

#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include "comm/frame.h"
#include "comm/net_io.h"

namespace diverse {

namespace {

// Deadline for the spawn-time handshake (exec + runtime startup + one
// heartbeat round-trip). Generous: a handshake miss is a dead worker.
constexpr uint64_t kSpawnHandshakeMs = 5000;

std::string EnvelopeSuffix(const TaskEnvelope& env) {
  return " (round '" + env.round + "', task " + std::to_string(env.task) +
         ", attempt " + std::to_string(env.attempt) + ")";
}

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

SocketEngine::SocketEngine(const SocketEngineOptions& options)
    : options_(options) {
  DIVERSE_CHECK(options_.num_workers > 0);
  binary_ = options_.worker_binary.empty()
                ? ExecutableDir() + "/diverse_worker"
                : options_.worker_binary;
  workers_.resize(options_.num_workers);
  for (size_t i = 0; i < workers_.size(); ++i) workers_[i].slot = i;
  for (size_t i = 0; i < workers_.size(); ++i) {
    const Status spawned = SpawnSlot(i, /*is_respawn=*/false);
    if (!spawned.ok()) {
      MutexLock lock(&mu_);
      if (init_error_.ok()) init_error_ = spawned;
    }
  }
  {
    MutexLock lock(&mu_);
    for (size_t i = 0; i < workers_.size(); ++i) {
      // Dead slots circulate too: the next RPC to draw one retries the
      // respawn, so a transient spawn failure is not permanent.
      free_.push_back(i);
    }
  }
  if (options_.heartbeat_ms > 0) {
    heartbeat_thread_ = std::thread([this] { HeartbeatLoop(); });
  }
}

SocketEngine::~SocketEngine() {
  {
    MutexLock lock(&mu_);
    shutdown_ = true;
    cv_.NotifyAll();
  }
  if (heartbeat_thread_.joinable()) heartbeat_thread_.join();
  // Contract: all engine calls have returned by now (the engine outlives
  // the driver run that uses it). Ask each live worker to exit, then reap;
  // WaitSubprocess SIGKILLs any straggler at its deadline.
  std::string bye;
  AppendFrame(FrameType::kShutdown, "", &bye);
  for (Worker& w : workers_) {
    if (w.alive && w.proc.fd >= 0) {
      (void)SendAllWithDeadline(w.proc.fd, bye, 1000).ok();
    }
  }
  for (Worker& w : workers_) (void)WaitSubprocess(&w.proc, 2000);
}

Status SocketEngine::Healthy() const {
  MutexLock lock(&mu_);
  return init_error_;
}

SocketEngineStats SocketEngine::stats() const {
  MutexLock lock(&mu_);
  return stats_;
}

pid_t SocketEngine::WorkerPidForTest(size_t slot) const {
  MutexLock lock(&mu_);
  if (slot >= workers_.size() || !workers_[slot].alive) return -1;
  return workers_[slot].proc.pid;
}

namespace {

struct FrameReadResult {
  Status status;
  Frame frame;
  std::string raw;
};

FrameReadResult ReadFrameFromSocket(int fd, std::string* inbuf,
                                    uint64_t deadline_ms) {
  FrameReadResult result;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(deadline_ms);
  char chunk[64 * 1024];
  for (;;) {
    Frame frame;
    size_t consumed = 0;
    const Status decode = TryDecodeFrame(*inbuf, &frame, &consumed);
    if (!decode.ok()) {
      // Malformed stream: the connection can never be trusted again (no
      // resync point); the caller kills and respawns.
      result.status = decode;
      return result;
    }
    if (consumed > 0) {
      result.raw = inbuf->substr(0, consumed);
      inbuf->erase(0, consumed);
      result.frame = std::move(frame);
      result.status = OkStatus();
      return result;
    }
    int timeout_ms = -1;
    if (deadline_ms > 0) {
      // PollTimeoutMs rounds a sub-millisecond remainder UP to 1 and
      // returns 0 only when the deadline has truly passed — a truncating
      // cast here would either expire early or (as a negative timeout)
      // block poll forever.
      timeout_ms = PollTimeoutMs(std::chrono::steady_clock::now(), deadline);
      if (timeout_ms == 0) {
        result.status = DeadlineExceededError(
            "RPC deadline (" + std::to_string(deadline_ms) +
            " ms) expired awaiting the worker's reply");
        return result;
      }
    }
    struct pollfd pfd;
    pfd.fd = fd;
    pfd.events = POLLIN;
    pfd.revents = 0;
    const int polled = ::poll(&pfd, 1, timeout_ms);
    if (polled < 0) {
      if (errno == EINTR) continue;
      result.status = UnavailableError(std::string("poll on worker failed: ") +
                                       std::strerror(errno));
      return result;
    }
    if (polled == 0) continue;  // re-check the deadline at loop top
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n < 0) {
      if (errno == EINTR) continue;
      // The parent fd is non-blocking (write deadlines need it); a poll
      // wakeup that raced the bytes away is just "try again".
      if (errno == EAGAIN || errno == EWOULDBLOCK) continue;
      result.status = UnavailableError(
          std::string("read from worker failed: ") + std::strerror(errno));
      return result;
    }
    if (n == 0) {
      result.status =
          AbortedError("worker process died (connection closed mid-RPC)");
      return result;
    }
    inbuf->append(chunk, static_cast<size_t>(n));
  }
}

}  // namespace

bool SocketEngine::PingWorker(Worker* w, uint64_t ack_deadline_ms) {
  if (w->proc.fd < 0) return false;
  std::string ping;
  AppendFrame(FrameType::kHeartbeat, "", &ping);
  if (!SendAllWithDeadline(w->proc.fd, ping, ack_deadline_ms).ok()) {
    return false;
  }
  FrameReadResult got =
      ReadFrameFromSocket(w->proc.fd, &w->inbuf, ack_deadline_ms);
  return got.status.ok() && got.frame.type == FrameType::kHeartbeatAck;
}

Status SocketEngine::SpawnSlot(size_t slot, bool is_respawn) {
  Status last = UnavailableError("worker spawn not attempted");
  const std::vector<std::string> worker_args = {
      "--cache-bytes=" + std::to_string(options_.worker_cache_bytes),
      "--write-deadline-ms=" + std::to_string(options_.rpc_deadline_ms)};
  for (size_t attempt = 0; attempt < 1 + options_.max_respawn_attempts;
       ++attempt) {
    if (attempt > 0) {
      // Shift-clamped: a hostile max_respawn_attempts cannot push the
      // shift past the width of the type (that would be UB, and 1 << 64
      // "backoffs" were observed as instant hot respawn loops).
      std::this_thread::sleep_for(std::chrono::milliseconds(
          RespawnBackoffMs(options_.respawn_backoff_ms, attempt)));
    }
    StatusOr<Subprocess> proc = SpawnWorker(binary_, worker_args);
    if (!proc.ok()) {
      last = proc.status();
      continue;
    }
    // The write-deadline machinery only binds on a non-blocking fd (a
    // blocking send never returns EAGAIN, so it could hang forever against
    // a stalled reader no matter what deadline we computed).
    if (!SetNonBlocking(proc->fd)) {
      Subprocess doomed = *proc;
      KillSubprocess(&doomed);
      (void)WaitSubprocess(&doomed, 2000);
      last = UnavailableError("could not set the worker socket non-blocking");
      continue;
    }
    // Handshake before trusting the slot: exec failures and protocol
    // mismatches surface here, not as a mystery EOF on the first task.
    Worker probe;
    probe.proc = *proc;
    if (!PingWorker(&probe, kSpawnHandshakeMs)) {
      KillSubprocess(&probe.proc);
      (void)WaitSubprocess(&probe.proc, 2000);
      last = UnavailableError("worker '" + binary_ +
                              "' spawned but failed the startup handshake");
      continue;
    }
    MutexLock lock(&mu_);
    Worker& w = workers_[slot];
    w.proc = probe.proc;
    w.inbuf = std::move(probe.inbuf);
    w.alive = true;
    w.cached.clear();  // a fresh process starts with an empty cache
    ++stats_.workers_spawned;
    if (is_respawn) ++stats_.respawns;
    return OkStatus();
  }
  MutexLock lock(&mu_);
  workers_[slot].alive = false;
  return last;
}

SocketEngine::Worker* SocketEngine::AcquireWorker() {
  MutexLock lock(&mu_);
  while (free_.empty() && !shutdown_) cv_.Wait(mu_);
  if (shutdown_) return nullptr;
  const size_t slot = free_.back();
  free_.pop_back();
  return &workers_[slot];
}

void SocketEngine::ReleaseWorker(Worker* w, bool healthy) {
  if (!healthy) {
    // Kill + reap now (the worker was SIGKILLed or is untrusted; the reap
    // is near-immediate) and leave the slot dead — the next RPC to draw it
    // respawns lazily, so this failing RPC pays no spawn backoff.
    KillSubprocess(&w->proc);
    (void)WaitSubprocess(&w->proc, 2000);
    w->inbuf.clear();
    w->alive = false;
    w->cached.clear();  // the cache died with the process
  }
  MutexLock lock(&mu_);
  free_.push_back(w->slot);
  cv_.NotifyAll();
}

Status SocketEngine::Exchange(Worker* w, const TaskEnvelope& env,
                              const std::string& payload, WireReply* reply,
                              CallTally* tally) {
  if (env.fault == FaultKind::kConnDrop) {
    // Sever the link instead of completing the RPC; the worker sees EOF
    // and exits, the attempt fails as a lost connection.
    if (w->proc.fd >= 0) {
      ::close(w->proc.fd);
      w->proc.fd = -1;
    }
    return UnavailableError("injected connection drop severed the worker link" +
                            EnvelopeSuffix(env));
  }
  if (env.fault == FaultKind::kWorkerCrash && w->proc.pid > 0) {
    // SIGKILL the worker while it is provably idle (blocked reading the
    // request we have not sent yet) and wait — without reaping, so the
    // normal cleanup path still owns the zombie — until it is actually
    // dead. Killing after the send would race the worker's reply on small
    // tasks and turn the scheduled fault into a coin flip; this ordering
    // guarantees the read below sees EOF -> kAborted every time, exactly
    // like an unscripted crash that lost the process mid-RPC.
    (void)::kill(w->proc.pid, SIGKILL);
    siginfo_t info;
    while (::waitid(P_PID, static_cast<id_t>(w->proc.pid), &info,
                    WEXITED | WNOWAIT) == -1 &&
           errno == EINTR) {
    }
  }
  const auto ship_start = std::chrono::steady_clock::now();
  const auto deadline =
      ship_start + std::chrono::milliseconds(options_.rpc_deadline_ms);
  const bool has_deadline = options_.rpc_deadline_ms > 0;
  Status sent = OkStatus();
  if (options_.chunk_bytes > 0 && payload.size() > options_.chunk_bytes) {
    // Bounded slices, each its own checksummed frame, all written under
    // the one RPC deadline. The worker starts deserializing the first
    // slice while the rest are still being written.
    const std::string_view whole(payload);
    std::string piece;
    for (size_t off = 0; off < whole.size() && sent.ok();
         off += options_.chunk_bytes) {
      const size_t n = std::min(options_.chunk_bytes, whole.size() - off);
      const bool final_slice = off + n == whole.size();
      piece.clear();
      AppendFrame(final_slice ? FrameType::kRequestLast
                              : FrameType::kRequestChunk,
                  whole.substr(off, n), &piece);
      sent = SendAllUntil(w->proc.fd, piece, deadline, has_deadline);
      if (sent.ok()) {
        ++tally->chunks_sent;
        tally->request_bytes_sent += piece.size();
      }
    }
  } else {
    std::string wire;
    AppendFrame(FrameType::kRequest, payload, &wire);
    sent = SendAllUntil(w->proc.fd, wire, deadline, has_deadline);
    if (sent.ok()) tally->request_bytes_sent += wire.size();
  }
  tally->ship_seconds += SecondsSince(ship_start);
  if (!sent.ok()) {
    return Status(sent.code(), sent.message() + EnvelopeSuffix(env));
  }
  const auto reply_start = std::chrono::steady_clock::now();
  FrameReadResult got =
      ReadFrameFromSocket(w->proc.fd, &w->inbuf, options_.rpc_deadline_ms);
  tally->reply_seconds += SecondsSince(reply_start);
  if (!got.status.ok()) {
    return Status(got.status.code(), got.status.message() + EnvelopeSuffix(env));
  }
  if (got.frame.type != FrameType::kReply) {
    return DataLossError("unexpected frame type from worker" +
                         EnvelopeSuffix(env));
  }
  if (env.fault == FaultKind::kFrameCorrupt) {
    // Flip one payload byte of a copy of the raw reply and push it through
    // the real decoder: the checksum must reject it. The live stream stays
    // in sync, so the worker remains usable.
    std::string corrupted = got.raw;
    corrupted[kFrameHeaderBytes] =
        static_cast<char>(corrupted[kFrameHeaderBytes] ^ 0x5A);
    Frame junk;
    size_t consumed = 0;
    const Status detect = TryDecodeFrame(corrupted, &junk, &consumed);
    if (detect.ok()) {
      return DataLossError("injected frame corruption went undetected" +
                           EnvelopeSuffix(env));
    }
    return Status(detect.code(), detect.message() + EnvelopeSuffix(env));
  }
  StatusOr<WireReply> decoded = TryDecodeWireReply(got.frame.payload);
  if (!decoded.ok()) {
    return Status(decoded.status().code(),
                  decoded.status().message() + EnvelopeSuffix(env));
  }
  *reply = std::move(*decoded);
  return OkStatus();
}

WireRequest SocketEngine::MakeRequest(WireTaskType type,
                                      const TaskEnvelope& env) const {
  WireRequest req;
  req.type = type;
  req.metric = options_.metric;
  req.problem = options_.problem;
  req.round = env.round;
  req.task = env.task;
  req.attempt = env.attempt;
  if (env.fault == FaultKind::kReplyDelay) {
    // Sleep long enough to lose the race against the RPC deadline unless
    // the schedule pinned an explicit delay.
    req.delay_ms = env.fault_param > 0 ? env.fault_param
                                       : options_.rpc_deadline_ms * 2 + 50;
  }
  return req;
}

StatusOr<WireReply> SocketEngine::Call(const TaskEnvelope& env,
                                       WireRequest* req,
                                       const PointSet* points,
                                       bool cacheable) {
  Worker* w = AcquireWorker();
  if (w == nullptr) return UnavailableError("socket engine is shut down");
  if (!w->alive) {
    const Status revived = SpawnSlot(w->slot, /*is_respawn=*/true);
    if (!revived.ok()) {
      ReleaseWorker(w, /*healthy=*/false);
      MutexLock lock(&mu_);
      ++stats_.rpc_errors;
      return revived;
    }
  }
  CallTally tally;
  const bool caching = cacheable && points != nullptr && !points->empty() &&
                       options_.worker_cache_bytes > 0;
  uint64_t key = 0;
  if (caching) {
    const auto fp_start = std::chrono::steady_clock::now();
    // The MapReduce drivers stamp the envelope once per round; a bare
    // engine call (tests, benches) pays the fingerprint itself.
    key = env.cache_key != 0 ? env.cache_key : FingerprintPoints(*points);
    tally.ship_seconds += SecondsSince(fp_start);
    if (env.fault == FaultKind::kCacheEvict) {
      // Inflict the eviction for real: the worker drops the entry before
      // serving, so the by-ref attempt below misses and the driver walks
      // the full fallback path.
      req->evict_fingerprint = key;
    }
  }
  if (env.fault == FaultKind::kReadStall) {
    // Tell the worker to sleep without reading, then ship normally: on a
    // partition larger than the kernel socket buffer the write below can
    // only complete if the deadline machinery is broken.
    const uint64_t stall_ms = env.fault_param > 0
                                  ? env.fault_param
                                  : options_.rpc_deadline_ms * 2 + 100;
    std::string stall;
    std::string param(reinterpret_cast<const char*>(&stall_ms),
                      sizeof(stall_ms));
    AppendFrame(FrameType::kStall, param, &stall);
    const Status stalled =
        SendAllWithDeadline(w->proc.fd, stall, options_.rpc_deadline_ms);
    if (!stalled.ok()) {
      ReleaseWorker(w, /*healthy=*/false);
      MutexLock lock(&mu_);
      ++stats_.rpc_errors;
      return Status(stalled.code(), stalled.message() + EnvelopeSuffix(env));
    }
  }
  WireReply reply;
  Status exchanged = OkStatus();
  bool by_ref = caching && w->cached.count(key) > 0 &&
                env.fault != FaultKind::kReadStall;
  if (by_ref) {
    req->points_by_ref = true;
    req->cache_insert = false;
    req->points_fingerprint = key;
    const auto enc_start = std::chrono::steady_clock::now();
    const std::string payload = EncodeWireRequest(*req);
    tally.ship_seconds += SecondsSince(enc_start);
    exchanged = Exchange(w, env, payload, &reply, &tally);
    if (exchanged.ok() && reply.cache_miss &&
        reply.status.code() == StatusCode::kNotFound) {
      // The worker evicted (or lost) the entry: fall back to a full ship.
      // Transparent to the caller — this is the certified degraded path.
      ++tally.cache_misses;
      w->cached.erase(key);
      by_ref = false;
    } else if (exchanged.ok()) {
      ++tally.cache_hits;
    }
  }
  if (!by_ref && exchanged.ok()) {
    req->points_by_ref = false;
    req->cache_insert = caching;
    req->points_fingerprint = caching ? key : 0;
    const auto enc_start = std::chrono::steady_clock::now();
    const std::string payload = EncodeWireRequest(*req, points);
    tally.ship_seconds += SecondsSince(enc_start);
    exchanged = Exchange(w, env, payload, &reply, &tally);
    if (exchanged.ok() && caching && reply.status.ok()) {
      // The worker verified the fingerprint and inserted the partition;
      // later calls for the same content send only the by-ref stub. (A
      // non-OK reply — fingerprint mismatch, task error — may not have
      // reached the insert, so it is not recorded.)
      w->cached.insert(key);
    }
  }
  // Injected frame corruption leaves the live stream in sync, so the
  // worker stays trusted; every other failure kills + respawns.
  const bool healthy =
      exchanged.ok() || (env.fault == FaultKind::kFrameCorrupt &&
                         exchanged.code() == StatusCode::kDataLoss);
  ReleaseWorker(w, healthy);
  {
    MutexLock lock(&mu_);
    stats_.cache_hits += tally.cache_hits;
    stats_.cache_misses += tally.cache_misses;
    stats_.chunks_sent += tally.chunks_sent;
    stats_.request_bytes_sent += tally.request_bytes_sent;
    stats_.ship_seconds += tally.ship_seconds;
    stats_.reply_seconds += tally.reply_seconds;
    if (!exchanged.ok()) ++stats_.rpc_errors;
  }
  if (!exchanged.ok()) return exchanged;
  if (reply.type != req->type) {
    MutexLock lock(&mu_);
    ++stats_.rpc_errors;
    return DataLossError("reply task type does not match the request" +
                         EnvelopeSuffix(env));
  }
  return reply;
}

void SocketEngine::HeartbeatLoop() {
  MutexLock lock(&mu_);
  for (;;) {
    const auto wake = std::chrono::steady_clock::now() +
                      std::chrono::milliseconds(options_.heartbeat_ms);
    while (!shutdown_ && std::chrono::steady_clock::now() < wake) {
      cv_.WaitUntil(mu_, wake);
    }
    if (shutdown_) return;
    for (size_t i = 0; i < workers_.size(); ++i) {
      auto it = std::find(free_.begin(), free_.end(), i);
      if (it == free_.end()) continue;  // busy: the RPC path polices it
      free_.erase(it);  // hold the slot out while probing
      Worker* w = &workers_[i];
      lock.Unlock();
      bool live = false;
      if (w->alive) {
        live = PingWorker(
            w, std::max<uint64_t>(options_.heartbeat_ms, uint64_t{100}));
      }
      const bool failed_ping = w->alive && !live;
      if (!live) {
        KillSubprocess(&w->proc);
        (void)WaitSubprocess(&w->proc, 2000);
        w->inbuf.clear();
        w->alive = false;
        w->cached.clear();
        if (!SpawnSlot(i, /*is_respawn=*/true).ok()) {
          // Slot stays dead but circulates; the next RPC to draw it
          // retries the respawn.
        }
      }
      lock.Lock();
      ++stats_.heartbeats_sent;
      if (failed_ping) ++stats_.heartbeat_failures;
      free_.push_back(i);
      cv_.NotifyAll();
      if (shutdown_) return;
    }
  }
}

StatusOr<PointSet> SocketEngine::Coreset(const TaskEnvelope& env,
                                         const PointSet& part,
                                         const CoresetSpec& spec) {
  WireRequest req = MakeRequest(WireTaskType::kCoreset, env);
  req.k_prime = spec.k_prime;
  req.delegates = spec.delegates;
  req.extended = spec.extended;
  StatusOr<WireReply> reply = Call(env, &req, &part, /*cacheable=*/true);
  if (!reply.ok()) return reply.status();
  if (!reply->status.ok()) return reply->status;
  return std::move(reply->points);
}

StatusOr<GenCoresetResult> SocketEngine::GenCoreset(const TaskEnvelope& env,
                                                    const PointSet& part,
                                                    size_t k, size_t k_prime) {
  WireRequest req = MakeRequest(WireTaskType::kGenCoreset, env);
  req.k = k;
  req.k_prime = k_prime;
  StatusOr<WireReply> reply = Call(env, &req, &part, /*cacheable=*/true);
  if (!reply.ok()) return reply.status();
  if (!reply->status.ok()) return reply->status;
  GenCoresetResult result;
  result.gen = std::move(reply->gen);
  result.range = reply->range;
  return result;
}

StatusOr<PointSet> SocketEngine::MergeCoresets(const TaskEnvelope& env,
                                               const PointSet& a,
                                               const PointSet& b) {
  WireRequest req = MakeRequest(WireTaskType::kMergeCoresets, env);
  req.points2 = b;
  StatusOr<WireReply> reply = Call(env, &req, &a, /*cacheable=*/false);
  if (!reply.ok()) return reply.status();
  if (!reply->status.ok()) return reply->status;
  return std::move(reply->points);
}

StatusOr<PointSet> SocketEngine::Solve(const TaskEnvelope& env,
                                       const PointSet& aggregate, size_t k) {
  WireRequest req = MakeRequest(WireTaskType::kSolve, env);
  req.k = k;
  StatusOr<WireReply> reply = Call(env, &req, &aggregate, /*cacheable=*/false);
  if (!reply.ok()) return reply.status();
  if (!reply->status.ok()) return reply->status;
  return std::move(reply->points);
}

StatusOr<GeneralizedCoreset> SocketEngine::GenSolve(
    const TaskEnvelope& env, const GeneralizedCoreset& merged, size_t k) {
  WireRequest req = MakeRequest(WireTaskType::kGenSolve, env);
  req.gen = merged;
  req.k = k;
  StatusOr<WireReply> reply = Call(env, &req, nullptr, /*cacheable=*/false);
  if (!reply.ok()) return reply.status();
  if (!reply->status.ok()) return reply->status;
  return std::move(reply->gen);
}

StatusOr<PointSet> SocketEngine::Instantiate(const TaskEnvelope& env,
                                             const GeneralizedCoreset& selected,
                                             const PointSet& part,
                                             double range) {
  WireRequest req = MakeRequest(WireTaskType::kInstantiate, env);
  req.gen = selected;
  req.range = range;
  StatusOr<WireReply> reply = Call(env, &req, &part, /*cacheable=*/true);
  if (!reply.ok()) return reply.status();
  if (!reply->status.ok()) return reply->status;
  return std::move(reply->points);
}

}  // namespace diverse
