#include "comm/net_io.h"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

namespace diverse {

bool SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return false;
  return ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) >= 0;
}

int PollTimeoutMs(std::chrono::steady_clock::time_point now,
                  std::chrono::steady_clock::time_point deadline) {
  if (now >= deadline) return 0;
  // Round UP: a remainder of 0.2ms must poll 1ms, not truncate to 0 (a
  // busy spin) — and certainly never go negative (poll() reads negative
  // timeouts as "block forever", which would resurrect the hang this
  // deadline exists to prevent).
  const auto remaining = std::chrono::duration_cast<std::chrono::nanoseconds>(
      deadline - now);
  const long long ms = (remaining.count() + 999999) / 1000000;
  return static_cast<int>(std::min<long long>(std::max<long long>(ms, 1),
                                              60000));
}

uint64_t RespawnBackoffMs(uint64_t base_ms, size_t attempt) {
  if (base_ms == 0 || attempt == 0) return 0;
  // Clamp the exponent BEFORE shifting: `base << (attempt - 1)` is UB for
  // shifts >= 64 and overflows long before that. 2^11 * any sane base
  // already exceeds the ceiling, so larger shifts saturate.
  const size_t shift = std::min<size_t>(attempt - 1, 11);
  if (base_ms > (kMaxRespawnBackoffMs >> shift)) return kMaxRespawnBackoffMs;
  return base_ms << shift;
}

Status SendAllUntil(int fd, std::string_view bytes,
                    std::chrono::steady_clock::time_point deadline,
                    bool has_deadline) {
  if (fd < 0) return AbortedError("write on a closed worker connection");
  size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + off, bytes.size() - off,
                             MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK) {
      if (errno == EPIPE || errno == ECONNRESET) {
        return AbortedError("peer closed the connection mid-write (" +
                            std::to_string(bytes.size() - off) +
                            " bytes unsent)");
      }
      return UnavailableError(std::string("socket send failed: ") +
                              std::strerror(errno));
    }
    // Buffer full: wait for drainage under the deadline.
    int timeout_ms = -1;
    if (has_deadline) {
      const auto now = std::chrono::steady_clock::now();
      if (now >= deadline) {
        return DeadlineExceededError(
            "write deadline expired with " +
            std::to_string(bytes.size() - off) +
            " bytes unsent (peer stopped draining its socket)");
      }
      timeout_ms = PollTimeoutMs(now, deadline);
    }
    struct pollfd pfd;
    pfd.fd = fd;
    pfd.events = POLLOUT;
    pfd.revents = 0;
    const int polled = ::poll(&pfd, 1, timeout_ms);
    if (polled < 0 && errno != EINTR) {
      return UnavailableError(std::string("poll for socket writability "
                                          "failed: ") +
                              std::strerror(errno));
    }
    // polled == 0 (timeout) re-checks the deadline at loop top; POLLERR /
    // POLLHUP fall through to send(), whose errno names the failure.
  }
  return OkStatus();
}

Status SendAllWithDeadline(int fd, std::string_view bytes,
                           uint64_t deadline_ms) {
  const bool has_deadline = deadline_ms > 0;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(deadline_ms);
  return SendAllUntil(fd, bytes, deadline, has_deadline);
}

}  // namespace diverse
