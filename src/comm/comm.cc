#include "comm/comm.h"

#include <algorithm>
#include <optional>
#include <utility>
#include <vector>

#include "core/coreset.h"
#include "core/sequential.h"
#include "util/thread_annotations.h"

namespace diverse {

PointSet ComputeCoreset(const PointSet& part, const Metric& metric,
                        const CoresetSpec& spec, Dataset* scratch) {
  if (part.empty()) return {};
  scratch->Assign(part);
  if (!spec.extended) {
    return GmmCoreset(*scratch, metric, spec.k_prime).points;
  }
  return GmmExtCoreset(*scratch, metric, spec.k_prime, spec.delegates).points;
}

GenCoresetResult ComputeGenCoreset(const PointSet& part, const Metric& metric,
                                   size_t k, size_t k_prime,
                                   Dataset* scratch) {
  GenCoresetResult result;
  scratch->Assign(part);
  result.gen = GmmGenCoreset(*scratch, metric, k, k_prime, &result.range);
  return result;
}

PointSet ComputeSolve(const PointSet& aggregate, DiversityProblem problem,
                      const Metric& metric, size_t k, Dataset* scratch) {
  const size_t effective_k = std::min(k, aggregate.size());
  PointSet sol;
  if (effective_k == 0) return sol;
  scratch->Assign(aggregate);
  std::vector<size_t> picked =
      SolveSequential(problem, *scratch, metric, effective_k);
  sol.reserve(picked.size());
  for (size_t idx : picked) sol.push_back(aggregate[idx]);
  return sol;
}

GeneralizedCoreset ComputeGenSolve(const GeneralizedCoreset& merged,
                                   DiversityProblem problem,
                                   const Metric& metric, size_t k) {
  const size_t effective_k = std::min(k, merged.ExpandedSize());
  if (effective_k == 0) return {};
  return SolveSequentialGeneralized(problem, merged, metric, effective_k);
}

StatusOr<PointSet> ComputeInstantiate(const TaskEnvelope& env,
                                      const GeneralizedCoreset& selected,
                                      const PointSet& part,
                                      const Metric& metric, double range) {
  std::optional<PointSet> inst = Instantiate(selected, part, metric, range);
  if (!inst.has_value()) {
    return FailedPreconditionError(
        "instantiation could not supply enough delegates (round '" +
        env.round + "', task " + std::to_string(env.task) + ")");
  }
  return std::move(*inst);
}

// The same acquire/assign/release scratch discipline the pre-engine
// simulator used (mr_diversity.h DatasetScratchPool): at most one scratch
// Dataset per concurrently running reducer, capacity reused across calls.
struct LoopbackEngine::ScratchPool {
  Dataset Acquire() DIVERSE_EXCLUDES(mu) {
    MutexLock lock(&mu);
    if (free.empty()) return Dataset();
    Dataset d = std::move(free.back());
    free.pop_back();
    return d;
  }

  void Release(Dataset d) DIVERSE_EXCLUDES(mu) {
    d.Clear();
    MutexLock lock(&mu);
    free.push_back(std::move(d));
  }

  Mutex mu;
  std::vector<Dataset> free DIVERSE_GUARDED_BY(mu);
};

LoopbackEngine::LoopbackEngine(const Metric* metric, DiversityProblem problem)
    : metric_(metric), problem_(problem),
      scratch_(std::make_unique<ScratchPool>()) {}

LoopbackEngine::~LoopbackEngine() = default;

Status LoopbackEngine::ApplyTransportFault(const TaskEnvelope& env) const {
  auto at = [&env]() {
    return " (round '" + env.round + "', task " + std::to_string(env.task) +
           ", attempt " + std::to_string(env.attempt) + ")";
  };
  switch (env.fault) {
    case FaultKind::kWorkerCrash:
      return AbortedError("injected worker crash" + at());
    case FaultKind::kConnDrop:
      return UnavailableError("injected connection drop" + at());
    case FaultKind::kFrameCorrupt:
      return DataLossError("injected frame corruption" + at());
    case FaultKind::kReplyDelay:
      return DeadlineExceededError("injected reply delay outlived the RPC "
                                   "deadline" +
                                   at());
    case FaultKind::kReadStall:
      // The socket transport's write deadline expires against the stalled
      // reader; loopback has no socket, so it simulates the outcome.
      return DeadlineExceededError(
          "injected read stall outlived the write deadline" + at());
    case FaultKind::kCacheEvict:
      // A success-path fault: the socket transport falls back to a full
      // re-ship and the attempt completes. Loopback has no serialization
      // to skip, so the no-op IS the faithful simulation.
      return OkStatus();
    default:
      return OkStatus();
  }
}

StatusOr<PointSet> LoopbackEngine::Coreset(const TaskEnvelope& env,
                                           const PointSet& part,
                                           const CoresetSpec& spec) {
  DIVERSE_RETURN_IF_ERROR(ApplyTransportFault(env));
  if (part.empty()) return PointSet{};
  Dataset scratch = scratch_->Acquire();
  PointSet cs = ComputeCoreset(part, *metric_, spec, &scratch);
  scratch_->Release(std::move(scratch));
  return cs;
}

StatusOr<GenCoresetResult> LoopbackEngine::GenCoreset(const TaskEnvelope& env,
                                                      const PointSet& part,
                                                      size_t k,
                                                      size_t k_prime) {
  DIVERSE_RETURN_IF_ERROR(ApplyTransportFault(env));
  Dataset scratch = scratch_->Acquire();
  GenCoresetResult result =
      ComputeGenCoreset(part, *metric_, k, k_prime, &scratch);
  scratch_->Release(std::move(scratch));
  return result;
}

StatusOr<PointSet> LoopbackEngine::MergeCoresets(const TaskEnvelope& env,
                                                 const PointSet& a,
                                                 const PointSet& b) {
  DIVERSE_RETURN_IF_ERROR(ApplyTransportFault(env));
  PointSet merged;
  merged.reserve(a.size() + b.size());
  merged.insert(merged.end(), a.begin(), a.end());
  merged.insert(merged.end(), b.begin(), b.end());
  return merged;
}

StatusOr<PointSet> LoopbackEngine::Solve(const TaskEnvelope& env,
                                         const PointSet& aggregate,
                                         size_t k) {
  DIVERSE_RETURN_IF_ERROR(ApplyTransportFault(env));
  Dataset scratch = scratch_->Acquire();
  PointSet sol = ComputeSolve(aggregate, problem_, *metric_, k, &scratch);
  scratch_->Release(std::move(scratch));
  return sol;
}

StatusOr<GeneralizedCoreset> LoopbackEngine::GenSolve(
    const TaskEnvelope& env, const GeneralizedCoreset& merged, size_t k) {
  DIVERSE_RETURN_IF_ERROR(ApplyTransportFault(env));
  return ComputeGenSolve(merged, problem_, *metric_, k);
}

StatusOr<PointSet> LoopbackEngine::Instantiate(
    const TaskEnvelope& env, const GeneralizedCoreset& selected,
    const PointSet& part, double range) {
  DIVERSE_RETURN_IF_ERROR(ApplyTransportFault(env));
  return ComputeInstantiate(env, selected, part, *metric_, range);
}

}  // namespace diverse
