// Deadline-aware socket I/O primitives shared by the driver-side engine
// (comm/socket_engine.cc) and the worker loop (comm/worker_core.cc).
//
// Every byte written to a peer goes through SendAllWithDeadline: a
// poll(POLLOUT)-gated send loop on a non-blocking fd. A peer that stops
// draining its socket (a stalled reader) fills the kernel buffer and the
// write surfaces kDeadlineExceeded within the budget instead of blocking
// the calling thread forever — the hang the old blocking SendAll loops
// allowed. A closed peer surfaces kAborted (EPIPE/ECONNRESET), feeding
// the same retry/respawn path as a failed read.
//
// The small helpers are extracted so their edge cases are unit-testable:
//   * PollTimeoutMs — remaining-deadline -> poll timeout without the
//     sub-millisecond truncation trap (a remainder under 1ms must become
//     a short non-negative poll, never -1 = block forever).
//   * RespawnBackoffMs — exponential backoff with the shift clamped
//     before it happens (shifting u64 by >= 64 is UB, and a large attempt
//     count must not overflow into a garbage sleep).

#ifndef DIVERSE_COMM_NET_IO_H_
#define DIVERSE_COMM_NET_IO_H_

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string_view>

#include "util/status.h"

namespace diverse {

/// Ceiling on one exponential-backoff sleep between respawn attempts.
inline constexpr uint64_t kMaxRespawnBackoffMs = 2000;

/// Puts `fd` into non-blocking mode (required by SendAllWithDeadline: a
/// blocking fd can still block inside send() after POLLOUT when the free
/// buffer space is smaller than the write). Returns false on fcntl failure.
bool SetNonBlocking(int fd);

/// The poll() timeout for the time remaining until `deadline`: 0 when the
/// deadline has passed (the caller must treat 0 from this helper as
/// "expired", not "poll forever"), otherwise the remainder rounded UP to
/// whole milliseconds (a sub-millisecond remainder polls 1ms instead of
/// truncating to a busy 0-timeout spin or, worse, a negative value that
/// poll() would read as infinite), clamped to 60000 so a huge deadline
/// still re-checks shutdown periodically. Never negative.
int PollTimeoutMs(std::chrono::steady_clock::time_point now,
                  std::chrono::steady_clock::time_point deadline);

/// Backoff before respawn attempt `attempt` (1-based):
/// min(base_ms * 2^(attempt-1), kMaxRespawnBackoffMs), computed with the
/// shift clamped so attempt counts >= 64 are well-defined instead of UB.
uint64_t RespawnBackoffMs(uint64_t base_ms, size_t attempt);

/// Writes all of `bytes` to non-blocking `fd` before `deadline` elapses
/// (has_deadline == false waits forever, matching deadline_ms == 0
/// configs). MSG_NOSIGNAL throughout: a dead peer is a Status on this
/// thread, never a process-wide SIGPIPE.
///   * kDeadlineExceeded — the peer stopped draining and the budget ran
///     out with bytes still queued.
///   * kAborted          — the peer closed the connection (EPIPE et al).
///   * kUnavailable      — an unexpected send/poll errno.
DIVERSE_MUST_USE Status
SendAllUntil(int fd, std::string_view bytes,
             std::chrono::steady_clock::time_point deadline, bool has_deadline);

/// SendAllUntil with the deadline `deadline_ms` from now; 0 = no deadline.
DIVERSE_MUST_USE Status SendAllWithDeadline(int fd, std::string_view bytes,
                                            uint64_t deadline_ms);

}  // namespace diverse

#endif  // DIVERSE_COMM_NET_IO_H_
