// The communication engine of the MapReduce drivers: the seam between the
// algorithm (partitioning, validation, retry/degrade policy — all in
// src/mapreduce/) and where a task's compute actually runs.
//
// Two implementations:
//   * LoopbackEngine — executes in-process on the driver's own Metric
//     pointer. This is the default and preserves the historical simulator
//     exactly (custom metrics, CountingMetric accounting, bit-identical
//     results, zero serialization).
//   * SocketEngine (comm/socket_engine.h) — serializes each call over the
//     frame protocol to a pool of forked worker processes, with
//     heartbeats, RPC deadlines and crash recovery.
//
// Both answer the same typed calls, and both apply the *transport* fault
// kinds of the FaultInjector (forwarded by the driver through the
// TaskEnvelope): loopback simulates the failure outcome (the Status a real
// transport would surface), the socket engine inflicts the real thing
// (SIGKILL, dropped connection, corrupted frame, delayed reply). Either
// way the executor above sees the same error taxonomy and drives the same
// retry -> speculative re-launch -> degrade recovery paths.
//
// The Compute* free functions are the pure task bodies, shared by
// LoopbackEngine and the worker process (comm/worker_core.cc) so the
// remote path runs literally the same code — the fault-free
// "distributed == in-process" bit-identity tests rest on that.

#ifndef DIVERSE_COMM_COMM_H_
#define DIVERSE_COMM_COMM_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "core/dataset.h"
#include "core/diversity.h"
#include "core/generalized_coreset.h"
#include "core/metric.h"
#include "core/point.h"
#include "mapreduce/fault_injector.h"
#include "util/status.h"

namespace diverse {

/// Identity + fault context of one engine call. `round`/`task`/`attempt`
/// name the executor attempt the call serves (error messages, fault
/// determinism); `fault` is the transport fault (IsTransportFault) this
/// call must apply, kNone otherwise.
struct TaskEnvelope {
  std::string round;
  size_t task = 0;
  size_t attempt = 0;
  FaultKind fault = FaultKind::kNone;
  uint64_t fault_param = 0;
  /// Content stamp of the call's partition argument (FingerprintPoints),
  /// or 0 for "unkeyed". The MapReduce drivers compute it once per round
  /// (when the engine WantsPartitionCacheKeys) so every retry and
  /// speculative re-launch of the task reuses the same key — the property
  /// that lets a re-ship after a crash hit the worker cache instead of
  /// re-serializing the partition.
  uint64_t cache_key = 0;
};

/// What core-set to build on a partition.
struct CoresetSpec {
  /// Kernel size (already clamped to the partition size by the driver).
  size_t k_prime = 1;
  /// Delegates per cluster for GMM-EXT; meaningful iff `extended`.
  size_t delegates = 0;
  /// GMM-EXT (delegate-augmented, Theorem 5) vs plain GMM (Theorem 4).
  bool extended = false;
};

/// GenCoreset result: the generalized core-set and its kernel range
/// (the r_{T_i} of Theorem 10).
struct GenCoresetResult {
  GeneralizedCoreset gen;
  double range = 0.0;
};

/// Where MapReduce task compute runs. Calls are thread-safe (reducer
/// attempts of one round run concurrently) and must be deterministic per
/// (inputs, spec) — retried and speculative attempts rely on identical
/// re-execution. Errors come back as Status in the executor's taxonomy
/// (kAborted: worker died; kUnavailable: connection lost; kDataLoss:
/// corrupt bytes; kDeadlineExceeded: RPC deadline).
class CommunicationEngine {
 public:
  virtual ~CommunicationEngine() = default;

  /// "loopback" or "socket" — result provenance in logs and benches.
  virtual std::string BackendName() const = 0;

  /// True when the engine benefits from TaskEnvelope::cache_key (the
  /// socket engine with a worker partition cache). Drivers skip the
  /// fingerprint pass entirely when this is false, so loopback runs pay
  /// nothing for the cache machinery.
  virtual bool WantsPartitionCacheKeys() const { return false; }

  /// GMM / GMM-EXT core-set of one partition (round 1 of the 2-round and
  /// recursive drivers).
  virtual StatusOr<PointSet> Coreset(const TaskEnvelope& env,
                                     const PointSet& part,
                                     const CoresetSpec& spec) = 0;

  /// GMM-GEN generalized core-set of one partition (round 1, 3-round
  /// driver).
  virtual StatusOr<GenCoresetResult> GenCoreset(const TaskEnvelope& env,
                                                const PointSet& part,
                                                size_t k, size_t k_prime) = 0;

  /// One tree-reduction node: the concatenation a ++ b, order preserved.
  /// Associative with the identity [], so any reduction tree over the
  /// per-partition core-sets yields the same final union as a single
  /// aggregator — which is why tree-reduced runs stay bit-identical.
  virtual StatusOr<PointSet> MergeCoresets(const TaskEnvelope& env,
                                           const PointSet& a,
                                           const PointSet& b) = 0;

  /// Sequential alpha-approximation on the aggregated core-set: the
  /// min(k, |aggregate|) selected points, in selection order.
  virtual StatusOr<PointSet> Solve(const TaskEnvelope& env,
                                   const PointSet& aggregate, size_t k) = 0;

  /// SolveSequentialGeneralized on the merged generalized core-set.
  virtual StatusOr<GeneralizedCoreset> GenSolve(const TaskEnvelope& env,
                                                const GeneralizedCoreset& merged,
                                                size_t k) = 0;

  /// Instantiates the selected entries owned by one partition: distinct
  /// delegates within `range` of each kernel point. kFailedPrecondition
  /// when the partition cannot supply enough delegates.
  virtual StatusOr<PointSet> Instantiate(const TaskEnvelope& env,
                                         const GeneralizedCoreset& selected,
                                         const PointSet& part,
                                         double range) = 0;
};

// ---- Pure compute cores (shared by loopback and the worker process) ----

/// Core-set of a partition per `spec`. `scratch` is the reducer's columnar
/// scratch (capacity reused across calls); cleared by the caller's pool.
PointSet ComputeCoreset(const PointSet& part, const Metric& metric,
                        const CoresetSpec& spec, Dataset* scratch);

/// GMM-GEN on a partition. Requires a non-empty partition.
GenCoresetResult ComputeGenCoreset(const PointSet& part, const Metric& metric,
                                   size_t k, size_t k_prime, Dataset* scratch);

/// SolveSequential over `aggregate`: the min(k, |aggregate|) picked points.
PointSet ComputeSolve(const PointSet& aggregate, DiversityProblem problem,
                      const Metric& metric, size_t k, Dataset* scratch);

/// SolveSequentialGeneralized over `merged` with target expanded size
/// min(k, m(merged)).
GeneralizedCoreset ComputeGenSolve(const GeneralizedCoreset& merged,
                                   DiversityProblem problem,
                                   const Metric& metric, size_t k);

/// Instantiate `selected` from `part` within `range`; error (naming
/// env.round/env.task) when the partition cannot supply enough delegates.
StatusOr<PointSet> ComputeInstantiate(const TaskEnvelope& env,
                                      const GeneralizedCoreset& selected,
                                      const PointSet& part,
                                      const Metric& metric, double range);

/// The in-process engine: runs every call directly on the driver's metric.
/// Thread-safe; owns a scratch-Dataset pool so concurrent reducers reuse
/// columnar capacity exactly as the pre-engine simulator did.
class LoopbackEngine final : public CommunicationEngine {
 public:
  /// `metric` must outlive this engine.
  LoopbackEngine(const Metric* metric, DiversityProblem problem);
  ~LoopbackEngine() override;

  std::string BackendName() const override { return "loopback"; }

  StatusOr<PointSet> Coreset(const TaskEnvelope& env, const PointSet& part,
                             const CoresetSpec& spec) override;
  StatusOr<GenCoresetResult> GenCoreset(const TaskEnvelope& env,
                                        const PointSet& part, size_t k,
                                        size_t k_prime) override;
  StatusOr<PointSet> MergeCoresets(const TaskEnvelope& env, const PointSet& a,
                                   const PointSet& b) override;
  StatusOr<PointSet> Solve(const TaskEnvelope& env, const PointSet& aggregate,
                           size_t k) override;
  StatusOr<GeneralizedCoreset> GenSolve(const TaskEnvelope& env,
                                        const GeneralizedCoreset& merged,
                                        size_t k) override;
  StatusOr<PointSet> Instantiate(const TaskEnvelope& env,
                                 const GeneralizedCoreset& selected,
                                 const PointSet& part, double range) override;

 private:
  struct ScratchPool;

  // Simulates the Status outcome of the transport fault in `env` — the
  // same error code the socket transport surfaces after inflicting the
  // real failure. OK when env carries no transport fault.
  Status ApplyTransportFault(const TaskEnvelope& env) const;

  const Metric* metric_;
  DiversityProblem problem_;
  std::unique_ptr<ScratchPool> scratch_;
};

}  // namespace diverse

#endif  // DIVERSE_COMM_COMM_H_
