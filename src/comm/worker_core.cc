#include "comm/worker_core.h"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstddef>
#include <memory>
#include <thread>
#include <utility>

#include "comm/comm.h"
#include "comm/frame.h"
#include "core/metric.h"

namespace diverse {

namespace {

WireReply ExecuteDecodedTask(const WireRequest& req) {
  WireReply reply;
  reply.type = req.type;
  std::unique_ptr<Metric> metric = MakeMetricByName(req.metric);
  if (metric == nullptr) {
    reply.status = InvalidArgumentError(
        "unknown metric '" + req.metric +
        "' (the socket transport supports only the built-in metrics)");
    return reply;
  }
  TaskEnvelope env;
  env.round = req.round;
  env.task = static_cast<size_t>(req.task);
  env.attempt = static_cast<size_t>(req.attempt);
  Dataset scratch;
  switch (req.type) {
    case WireTaskType::kCoreset: {
      CoresetSpec spec;
      spec.k_prime = static_cast<size_t>(req.k_prime);
      spec.delegates = static_cast<size_t>(req.delegates);
      spec.extended = req.extended;
      reply.points = ComputeCoreset(req.points, *metric, spec, &scratch);
      break;
    }
    case WireTaskType::kGenCoreset: {
      GenCoresetResult result = ComputeGenCoreset(
          req.points, *metric, static_cast<size_t>(req.k),
          static_cast<size_t>(req.k_prime), &scratch);
      reply.gen = std::move(result.gen);
      reply.range = result.range;
      break;
    }
    case WireTaskType::kMergeCoresets: {
      reply.points.reserve(req.points.size() + req.points2.size());
      reply.points.insert(reply.points.end(), req.points.begin(),
                          req.points.end());
      reply.points.insert(reply.points.end(), req.points2.begin(),
                          req.points2.end());
      break;
    }
    case WireTaskType::kSolve: {
      reply.points = ComputeSolve(req.points, req.problem, *metric,
                                  static_cast<size_t>(req.k), &scratch);
      break;
    }
    case WireTaskType::kGenSolve: {
      reply.gen = ComputeGenSolve(req.gen, req.problem, *metric,
                                  static_cast<size_t>(req.k));
      break;
    }
    case WireTaskType::kInstantiate: {
      StatusOr<PointSet> inst =
          ComputeInstantiate(env, req.gen, req.points, *metric, req.range);
      if (!inst.ok()) {
        reply.status = inst.status();
      } else {
        reply.points = std::move(*inst);
      }
      break;
    }
  }
  return reply;
}

// Writes all of `bytes` to the socket, retrying on EINTR / short writes.
// MSG_NOSIGNAL: when the driver drops the connection mid-reply the worker
// must exit through the return path, not die of SIGPIPE.
bool WriteAll(int fd, const std::string& bytes) {
  size_t off = 0;
  while (off < bytes.size()) {
    ssize_t n =
        ::send(fd, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

std::string ExecuteWireTask(std::string_view request_payload) {
  StatusOr<WireRequest> req = TryDecodeWireRequest(request_payload);
  WireReply reply;
  if (!req.ok()) {
    reply.status = req.status();
  } else {
    reply = ExecuteDecodedTask(*req);
  }
  return EncodeWireReply(reply);
}

int RunWorkerLoop(int fd) {
  std::string buf;
  char chunk[64 * 1024];
  for (;;) {
    // Drain complete frames already buffered before reading more.
    for (;;) {
      Frame frame;
      size_t consumed = 0;
      Status decode = TryDecodeFrame(buf, &frame, &consumed);
      if (!decode.ok()) return 1;  // malformed stream: give up loudly
      if (consumed == 0) break;    // need more bytes
      buf.erase(0, consumed);
      std::string out;
      switch (frame.type) {
        case FrameType::kShutdown:
          return 0;
        case FrameType::kHeartbeat:
          AppendFrame(FrameType::kHeartbeatAck, "", &out);
          break;
        case FrameType::kRequest: {
          // Honor the injected reply delay before computing, so the
          // driver's RPC deadline races the sleep exactly as a stuck
          // worker would behave.
          StatusOr<WireRequest> req = TryDecodeWireRequest(frame.payload);
          if (req.ok() && req->delay_ms > 0) {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(req->delay_ms));
          }
          AppendFrame(FrameType::kReply, ExecuteWireTask(frame.payload),
                      &out);
          break;
        }
        default:
          // kReply / kHeartbeatAck are driver-bound; receiving one here
          // means the peer is confused. Drop it.
          break;
      }
      if (!out.empty() && !WriteAll(fd, out)) return 1;
    }
    ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n < 0) {
      if (errno == EINTR) continue;
      return 1;
    }
    if (n == 0) return 0;  // driver closed: clean exit
    buf.append(chunk, static_cast<size_t>(n));
  }
}

}  // namespace diverse
