#include "comm/worker_core.h"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstddef>
#include <cstring>
#include <memory>
#include <thread>
#include <utility>

#include "comm/comm.h"
#include "comm/frame.h"
#include "comm/net_io.h"
#include "core/metric.h"

namespace diverse {

namespace {

// The task bodies read the partition through `points`, which aliases
// either request.points (inline ship) or a cache-resident PointSet
// (by-ref request) — the one code path is what keeps cached and shipped
// results bit-identical.
WireReply ExecuteDecodedTask(const WireRequest& req, const PointSet& points) {
  WireReply reply;
  reply.type = req.type;
  std::unique_ptr<Metric> metric = MakeMetricByName(req.metric);
  if (metric == nullptr) {
    reply.status = InvalidArgumentError(
        "unknown metric '" + req.metric +
        "' (the socket transport supports only the built-in metrics)");
    return reply;
  }
  TaskEnvelope env;
  env.round = req.round;
  env.task = static_cast<size_t>(req.task);
  env.attempt = static_cast<size_t>(req.attempt);
  Dataset scratch;
  switch (req.type) {
    case WireTaskType::kCoreset: {
      CoresetSpec spec;
      spec.k_prime = static_cast<size_t>(req.k_prime);
      spec.delegates = static_cast<size_t>(req.delegates);
      spec.extended = req.extended;
      reply.points = ComputeCoreset(points, *metric, spec, &scratch);
      break;
    }
    case WireTaskType::kGenCoreset: {
      GenCoresetResult result = ComputeGenCoreset(
          points, *metric, static_cast<size_t>(req.k),
          static_cast<size_t>(req.k_prime), &scratch);
      reply.gen = std::move(result.gen);
      reply.range = result.range;
      break;
    }
    case WireTaskType::kMergeCoresets: {
      reply.points.reserve(points.size() + req.points2.size());
      reply.points.insert(reply.points.end(), points.begin(), points.end());
      reply.points.insert(reply.points.end(), req.points2.begin(),
                          req.points2.end());
      break;
    }
    case WireTaskType::kSolve: {
      reply.points = ComputeSolve(points, req.problem, *metric,
                                  static_cast<size_t>(req.k), &scratch);
      break;
    }
    case WireTaskType::kGenSolve: {
      reply.gen = ComputeGenSolve(req.gen, req.problem, *metric,
                                  static_cast<size_t>(req.k));
      break;
    }
    case WireTaskType::kInstantiate: {
      StatusOr<PointSet> inst =
          ComputeInstantiate(env, req.gen, points, *metric, req.range);
      if (!inst.ok()) {
        reply.status = inst.status();
      } else {
        reply.points = std::move(*inst);
      }
      break;
    }
  }
  return reply;
}

}  // namespace

std::shared_ptr<const PointSet> WorkerPartitionCache::Lookup(
    uint64_t fingerprint) {
  auto it = index_.find(fingerprint);
  if (it == index_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);  // touch: move to MRU
  return it->second->points;
}

std::shared_ptr<const PointSet> WorkerPartitionCache::Insert(
    uint64_t fingerprint, PointSet points) {
  auto it = index_.find(fingerprint);
  if (it != index_.end()) {
    // Same fingerprint = same content; keep the resident copy warm.
    lru_.splice(lru_.begin(), lru_, it->second);
    return it->second->points;
  }
  const size_t bytes = ApproxPointSetBytes(points);
  auto shared = std::make_shared<const PointSet>(std::move(points));
  if (bytes > capacity_) return shared;  // would evict everything: bypass
  while (size_bytes_ + bytes > capacity_ && !lru_.empty()) {
    index_.erase(lru_.back().fingerprint);
    size_bytes_ -= lru_.back().bytes;
    lru_.pop_back();
    ++evictions_;
  }
  lru_.push_front(Entry{fingerprint, shared, bytes});
  index_[fingerprint] = lru_.begin();
  size_bytes_ += bytes;
  return shared;
}

bool WorkerPartitionCache::Evict(uint64_t fingerprint) {
  auto it = index_.find(fingerprint);
  if (it == index_.end()) return false;
  size_bytes_ -= it->second->bytes;
  lru_.erase(it->second);
  index_.erase(it);
  ++evictions_;
  return true;
}

WireReply ExecuteWireRequest(WireRequest request,
                             WorkerPartitionCache* cache) {
  if (cache != nullptr && request.evict_fingerprint != 0) {
    (void)cache->Evict(request.evict_fingerprint);
  }
  if (request.points_by_ref) {
    std::shared_ptr<const PointSet> cached =
        cache != nullptr ? cache->Lookup(request.points_fingerprint)
                         : nullptr;
    if (cached == nullptr) {
      // No compute on a miss: the driver re-ships and retries, and an
      // expensive task must not run twice for one logical attempt.
      WireReply reply;
      reply.type = request.type;
      reply.cache_miss = true;
      reply.status = NotFoundError(
          "partition " + std::to_string(request.points_fingerprint) +
          " not in the worker cache");
      return reply;
    }
    return ExecuteDecodedTask(request, *cached);
  }
  if (request.cache_insert && request.points_fingerprint != 0) {
    const uint64_t actual = FingerprintPoints(request.points);
    if (actual != request.points_fingerprint) {
      WireReply reply;
      reply.type = request.type;
      reply.status = DataLossError(
          "partition fingerprint mismatch: request claims " +
          std::to_string(request.points_fingerprint) +
          " but the shipped points hash to " + std::to_string(actual));
      return reply;
    }
    if (cache != nullptr) {
      std::shared_ptr<const PointSet> stored =
          cache->Insert(request.points_fingerprint,
                        std::move(request.points));
      return ExecuteDecodedTask(request, *stored);
    }
  }
  return ExecuteDecodedTask(request, request.points);
}

std::string ExecuteWireTask(std::string_view request_payload,
                            WorkerPartitionCache* cache) {
  StatusOr<WireRequest> req = TryDecodeWireRequest(request_payload);
  WireReply reply;
  if (!req.ok()) {
    reply.status = req.status();
  } else {
    reply = ExecuteWireRequest(std::move(*req), cache);
  }
  return EncodeWireReply(reply);
}

namespace {

// Completes the streamed or monolithic decode, honors the injected reply
// delay (so the driver's RPC deadline races the sleep exactly as a stuck
// worker would behave), and executes.
std::string RunRequest(StatusOr<WireRequest> req, WorkerPartitionCache* cache) {
  WireReply reply;
  if (!req.ok()) {
    reply.status = req.status();
  } else {
    if (req->delay_ms > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(req->delay_ms));
    }
    reply = ExecuteWireRequest(std::move(*req), cache);
  }
  return EncodeWireReply(reply);
}

}  // namespace

int RunWorkerLoop(int fd, const WorkerLoopOptions& options) {
  if (!SetNonBlocking(fd)) return 1;
  WorkerPartitionCache cache(options.cache_bytes);
  WorkerPartitionCache* cache_ptr =
      options.cache_bytes > 0 ? &cache : nullptr;
  // Live only between a kRequestChunk and its kRequestLast.
  std::unique_ptr<StreamingRequestDecoder> streaming;
  std::string buf;
  char chunk[64 * 1024];
  for (;;) {
    // Drain complete frames already buffered before reading more.
    for (;;) {
      Frame frame;
      size_t consumed = 0;
      Status decode = TryDecodeFrame(buf, &frame, &consumed);
      if (!decode.ok()) return 1;  // malformed stream: give up loudly
      if (consumed == 0) break;    // need more bytes
      buf.erase(0, consumed);
      std::string out;
      switch (frame.type) {
        case FrameType::kShutdown:
          return 0;
        case FrameType::kHeartbeat:
          AppendFrame(FrameType::kHeartbeatAck, "", &out);
          break;
        case FrameType::kStall: {
          // Deterministic stalled reader: sleep without touching the
          // socket, so the driver's in-flight ship backs up against the
          // kernel buffer and its write deadline — not this loop —
          // decides what happens.
          uint64_t ms = 0;
          if (frame.payload.size() == sizeof(ms)) {
            std::memcpy(&ms, frame.payload.data(), sizeof(ms));
          }
          std::this_thread::sleep_for(std::chrono::milliseconds(ms));
          break;
        }
        case FrameType::kRequestChunk: {
          if (streaming == nullptr) {
            streaming = std::make_unique<StreamingRequestDecoder>();
          }
          // A structural error is sticky; Finish() reports it when the
          // last slice arrives, as an error reply rather than a dead
          // stream (the frame CRC already vouches for transport
          // integrity).
          (void)streaming->Feed(frame.payload);
          break;
        }
        case FrameType::kRequestLast: {
          if (streaming == nullptr) {
            streaming = std::make_unique<StreamingRequestDecoder>();
          }
          (void)streaming->Feed(frame.payload);
          StatusOr<WireRequest> req = streaming->Finish();
          streaming.reset();
          AppendFrame(FrameType::kReply,
                      RunRequest(std::move(req), cache_ptr), &out);
          break;
        }
        case FrameType::kRequest: {
          AppendFrame(FrameType::kReply,
                      RunRequest(TryDecodeWireRequest(frame.payload),
                                 cache_ptr),
                      &out);
          break;
        }
        default:
          // kReply / kHeartbeatAck are driver-bound; receiving one here
          // means the peer is confused. Drop it.
          break;
      }
      if (!out.empty() &&
          !SendAllWithDeadline(fd, out, options.write_deadline_ms).ok()) {
        // The driver stopped draining or closed; exiting surfaces EOF on
        // its side, which it handles as a crashed worker (retry path).
        return 1;
      }
    }
    ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        struct pollfd pfd;
        pfd.fd = fd;
        pfd.events = POLLIN;
        pfd.revents = 0;
        if (::poll(&pfd, 1, -1) < 0 && errno != EINTR) return 1;
        continue;
      }
      return 1;
    }
    if (n == 0) return 0;  // driver closed: clean exit
    buf.append(chunk, static_cast<size_t>(n));
  }
}

int RunWorkerLoop(int fd) { return RunWorkerLoop(fd, WorkerLoopOptions{}); }

}  // namespace diverse
