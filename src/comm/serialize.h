// Wire payloads of the distributed runtime: the serialized form of one
// MapReduce task (request) and its result (reply), carried inside the
// frames of comm/frame.h.
//
// Point payloads reuse the binary record format of data/io.h verbatim
// (tag, dim, nnz, raw little-endian float bytes), so a partition or
// core-set that crosses the transport decodes bit-identically — the
// property the fault-free "distributed == in-process" tests assert.
// Every decoder validates through ByteReader bounds checks and returns a
// diagnosable Status on corrupt input; nothing here trusts a length field
// before checking it against the bytes actually present.

#ifndef DIVERSE_COMM_SERIALIZE_H_
#define DIVERSE_COMM_SERIALIZE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "core/diversity.h"
#include "core/generalized_coreset.h"
#include "core/point.h"
#include "data/io.h"
#include "util/status.h"

namespace diverse {

/// The compute a wire request asks a worker to perform. Each maps onto one
/// CommunicationEngine method (comm/comm.h).
enum class WireTaskType : uint8_t {
  /// GMM / GMM-EXT core-set of one partition.
  kCoreset = 1,
  /// GMM-GEN generalized core-set of one partition (+ kernel range).
  kGenCoreset = 2,
  /// Concatenate two core-sets, in order (one tree-reduction node).
  kMergeCoresets = 3,
  /// Sequential alpha-approximation on the aggregated core-set.
  kSolve = 4,
  /// SolveSequentialGeneralized on the merged generalized core-set.
  kGenSolve = 5,
  /// Instantiate selected delegates from one partition.
  kInstantiate = 6,
};

/// One serialized task request. `round`/`task`/`attempt` echo the executor
/// envelope (error messages + reply matching); `delay_ms` > 0 instructs the
/// worker to sleep before replying (the reply-delay transport fault).
struct WireRequest {
  WireTaskType type = WireTaskType::kCoreset;
  std::string metric;  // builtin metric name (core/metric.h Name())
  DiversityProblem problem = DiversityProblem::kRemoteEdge;
  std::string round;
  uint64_t task = 0;
  uint64_t attempt = 0;
  uint64_t delay_ms = 0;

  // kCoreset: `points` = partition; k_prime, delegates, extended.
  // kGenCoreset: `points` = partition; k, k_prime.
  // kMergeCoresets: `points` + `points2`, concatenated in this order.
  // kSolve: `points` = aggregated core-set; k.
  // kGenSolve: `gen` = merged generalized core-set; k.
  // kInstantiate: `gen` = selected subset, `points` = partition; `range`.
  uint64_t k = 0;
  uint64_t k_prime = 0;
  uint64_t delegates = 0;
  bool extended = false;  // GMM-EXT (delegate-augmented) vs plain GMM
  double range = 0.0;
  PointSet points;
  PointSet points2;
  GeneralizedCoreset gen;
};

/// One serialized task reply: an embedded Status plus the type-dependent
/// result (valid only when `status` is OK).
struct WireReply {
  WireTaskType type = WireTaskType::kCoreset;
  Status status;
  /// kCoreset / kMergeCoresets / kSolve / kInstantiate result.
  PointSet points;
  /// kGenCoreset / kGenSolve result.
  GeneralizedCoreset gen;
  /// kGenCoreset kernel range.
  double range = 0.0;
};

/// Point-set payload primitives, shared with the request/reply encoders:
/// u64 count followed by the io.h binary records.
void AppendPointSet(const PointSet& points, std::string* out);
DIVERSE_MUST_USE StatusOr<PointSet> TryReadPointSet(ByteReader* in,
                                                    const std::string& what);

/// Generalized core-set payload: u64 entry count, then per entry a u64
/// multiplicity and one point record.
void AppendGenCoreset(const GeneralizedCoreset& gen, std::string* out);
DIVERSE_MUST_USE StatusOr<GeneralizedCoreset> TryReadGenCoreset(
    ByteReader* in, const std::string& what);

/// Request / reply payload codecs. Decoders reject structural nonsense
/// (unknown task type, unknown metric name is left to the worker, counts
/// the payload cannot hold, truncation) with kInvalidArgument / kDataLoss.
std::string EncodeWireRequest(const WireRequest& request);
DIVERSE_MUST_USE StatusOr<WireRequest> TryDecodeWireRequest(
    std::string_view payload);
std::string EncodeWireReply(const WireReply& reply);
DIVERSE_MUST_USE StatusOr<WireReply> TryDecodeWireReply(
    std::string_view payload);

}  // namespace diverse

#endif  // DIVERSE_COMM_SERIALIZE_H_
