// Wire payloads of the distributed runtime: the serialized form of one
// MapReduce task (request) and its result (reply), carried inside the
// frames of comm/frame.h.
//
// Point payloads reuse the binary record format of data/io.h verbatim
// (tag, dim, nnz, raw little-endian float bytes), so a partition or
// core-set that crosses the transport decodes bit-identically — the
// property the fault-free "distributed == in-process" tests assert.
// Every decoder validates through ByteReader bounds checks and returns a
// diagnosable Status on corrupt input; nothing here trusts a length field
// before checking it against the bytes actually present.

#ifndef DIVERSE_COMM_SERIALIZE_H_
#define DIVERSE_COMM_SERIALIZE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "core/diversity.h"
#include "core/generalized_coreset.h"
#include "core/point.h"
#include "data/io.h"
#include "util/status.h"

namespace diverse {

/// The compute a wire request asks a worker to perform. Each maps onto one
/// CommunicationEngine method (comm/comm.h).
enum class WireTaskType : uint8_t {
  /// GMM / GMM-EXT core-set of one partition.
  kCoreset = 1,
  /// GMM-GEN generalized core-set of one partition (+ kernel range).
  kGenCoreset = 2,
  /// Concatenate two core-sets, in order (one tree-reduction node).
  kMergeCoresets = 3,
  /// Sequential alpha-approximation on the aggregated core-set.
  kSolve = 4,
  /// SolveSequentialGeneralized on the merged generalized core-set.
  kGenSolve = 5,
  /// Instantiate selected delegates from one partition.
  kInstantiate = 6,
};

/// One serialized task request. `round`/`task`/`attempt` echo the executor
/// envelope (error messages + reply matching); `delay_ms` > 0 instructs the
/// worker to sleep before replying (the reply-delay transport fault).
struct WireRequest {
  WireTaskType type = WireTaskType::kCoreset;
  std::string metric;  // builtin metric name (core/metric.h Name())
  DiversityProblem problem = DiversityProblem::kRemoteEdge;
  std::string round;
  uint64_t task = 0;
  uint64_t attempt = 0;
  uint64_t delay_ms = 0;

  // kCoreset: `points` = partition; k_prime, delegates, extended.
  // kGenCoreset: `points` = partition; k, k_prime.
  // kMergeCoresets: `points` + `points2`, concatenated in this order.
  // kSolve: `points` = aggregated core-set; k.
  // kGenSolve: `gen` = merged generalized core-set; k.
  // kInstantiate: `gen` = selected subset, `points` = partition; `range`.
  uint64_t k = 0;
  uint64_t k_prime = 0;
  uint64_t delegates = 0;
  bool extended = false;  // GMM-EXT (delegate-augmented) vs plain GMM
  double range = 0.0;

  // Worker-side partition caching (README "Distributed runtime"). The
  // fingerprint is the content stamp of the `points` section
  // (FingerprintPoints — pure content, so retries and repeated solves over
  // one corpus key identically); 0 = untagged, no cache interaction.
  uint64_t points_fingerprint = 0;
  /// The `points` section is omitted from the wire; the worker must resolve
  /// `points_fingerprint` from its partition cache (kNotFound + cache_miss
  /// reply when it cannot, and the driver falls back to a full ship).
  bool points_by_ref = false;
  /// The worker should verify the shipped `points` against the fingerprint
  /// and insert them into its cache (kDataLoss reply on a stamp mismatch).
  bool cache_insert = false;
  /// Non-zero: evict this entry from the worker cache before serving (the
  /// cache-evict fault — exercises the miss -> full-re-ship degraded path).
  uint64_t evict_fingerprint = 0;

  PointSet points;
  PointSet points2;
  GeneralizedCoreset gen;
};

/// One serialized task reply: an embedded Status plus the type-dependent
/// result (valid only when `status` is OK).
struct WireReply {
  WireTaskType type = WireTaskType::kCoreset;
  Status status;
  /// True on a by-ref request whose fingerprint was not in the worker's
  /// partition cache (status kNotFound): the driver distinguishes "re-ship
  /// the partition inline" from a genuine task failure by this bit.
  bool cache_miss = false;
  /// kCoreset / kMergeCoresets / kSolve / kInstantiate result.
  PointSet points;
  /// kGenCoreset / kGenSolve result.
  GeneralizedCoreset gen;
  /// kGenCoreset kernel range.
  double range = 0.0;
};

/// Point-set payload primitives, shared with the request/reply encoders:
/// u64 count followed by the io.h binary records.
void AppendPointSet(const PointSet& points, std::string* out);
DIVERSE_MUST_USE StatusOr<PointSet> TryReadPointSet(ByteReader* in,
                                                    const std::string& what);

/// Generalized core-set payload: u64 entry count, then per entry a u64
/// multiplicity and one point record.
void AppendGenCoreset(const GeneralizedCoreset& gen, std::string* out);
DIVERSE_MUST_USE StatusOr<GeneralizedCoreset> TryReadGenCoreset(
    ByteReader* in, const std::string& what);

/// 64-bit content stamp of a point set: a word-mixed hash over the same
/// logical bytes AppendPointRecord serializes (tag, dim, nnz, raw
/// index/value bit patterns), plus the count. Pure content — independent
/// of object identity, allocation, or transport — so the driver computes
/// it without serializing and the worker verifies it on the decoded
/// points (decode is exact, so the stamps agree iff the bytes survived).
/// Never returns 0 (0 is the "untagged" sentinel in WireRequest).
uint64_t FingerprintPoints(const PointSet& points);

/// Approximate resident bytes of a point set (records + vector headers):
/// the unit of the worker cache budget and the driver's oversize guard.
size_t ApproxPointSetBytes(const PointSet& points);

/// Request / reply payload codecs. Decoders reject structural nonsense
/// (unknown task type, unknown metric name is left to the worker, counts
/// the payload cannot hold, truncation) with kInvalidArgument / kDataLoss.
///
/// `points_override`, when non-null, is serialized as the request's
/// `points` section in place of request.points — the driver ships a
/// partition it does not own without copying it into the WireRequest
/// first. Ignored when request.points_by_ref (no points section at all).
std::string EncodeWireRequest(const WireRequest& request,
                              const PointSet* points_override = nullptr);
DIVERSE_MUST_USE StatusOr<WireRequest> TryDecodeWireRequest(
    std::string_view payload);
std::string EncodeWireReply(const WireReply& reply);
DIVERSE_MUST_USE StatusOr<WireReply> TryDecodeWireReply(
    std::string_view payload);

/// Incremental decoder of one wire-request payload, fed the kRequestChunk /
/// kRequestLast slices as they arrive so the worker deserializes while
/// later chunks are still in flight. Feed() consumes whole records
/// greedily and buffers only the unconsumed tail; it reports structural
/// errors it is already certain of (unknown task type, zero multiplicity)
/// immediately and defers truncation-vs-corruption judgement to Finish(),
/// where the stream is complete and every error is final. Feeding the
/// whole payload once then calling Finish() is exactly
/// TryDecodeWireRequest (the monolithic decoder is implemented this way).
class StreamingRequestDecoder {
 public:
  /// Consumes the next slice. A non-OK return is sticky and structural;
  /// the stream cannot be trusted afterwards.
  DIVERSE_MUST_USE Status Feed(std::string_view bytes);

  /// Completes the decode; the stream must hold exactly one request.
  DIVERSE_MUST_USE StatusOr<WireRequest> Finish();

  /// Decode progress (tests pin that deserialization overlaps arrival).
  size_t points_decoded() const { return req_.points.size(); }
  size_t buffered_bytes() const { return buf_.size() - pos_; }

 private:
  enum class Stage : uint8_t { kEnvelope, kPoints, kPoints2, kGen, kDone };

  // Consumes as much of buf_ as possible. In `final` mode every blocked
  // parse is an error; otherwise a blocked parse waits for more bytes.
  Status Advance(bool final);

  Stage stage_ = Stage::kEnvelope;
  std::string buf_;
  size_t pos_ = 0;  // consumed prefix of buf_ (compacted as it grows)
  WireRequest req_;
  bool have_count_ = false;
  uint64_t want_ = 0;  // entries expected in the current section
  uint64_t got_ = 0;
  Status error_;  // sticky structural error
};

}  // namespace diverse

#endif  // DIVERSE_COMM_SERIALIZE_H_
