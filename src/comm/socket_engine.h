// The multi-process backend of the MapReduce drivers: a pool of persistent
// worker processes (fork/exec of diverse_worker) connected by Unix-domain
// stream sockets, one RPC per engine call over the checksummed frame
// protocol of comm/frame.h.
//
// Robustness model:
//   * Liveness — a background heartbeat thread pings idle workers every
//     `heartbeat_ms`; a worker that misses its ack is killed and respawned
//     before a task is ever routed to it.
//   * Deadlines — every RPC read polls with a `rpc_deadline_ms` budget; a
//     worker that does not answer in time fails the attempt with
//     kDeadlineExceeded and is killed + respawned (a late reply would
//     desynchronize the stream).
//   * Recovery — spawn/respawn retries with bounded exponential backoff
//     (`respawn_backoff_ms` * 2^attempt, up to `max_respawn_attempts`).
//     A dead worker fails only the in-flight attempt; the executor above
//     retries it, and the respawned worker serves the retry.
//   * Fault injection — transport faults forwarded in the TaskEnvelope are
//     inflicted for real: kWorkerCrash SIGKILLs the serving worker after
//     the request is written, kConnDrop closes the connection mid-RPC,
//     kFrameCorrupt flips a reply byte so the checksum rejects it,
//     kReplyDelay asks the worker to sleep past the RPC deadline.
//
// Determinism: fault-free calls return bit-identical results to
// LoopbackEngine (same Compute* bodies, float bytes round-tripped raw),
// so the driver's output is independent of the transport.

#ifndef DIVERSE_COMM_SOCKET_ENGINE_H_
#define DIVERSE_COMM_SOCKET_ENGINE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "comm/comm.h"
#include "comm/serialize.h"
#include "util/subprocess.h"
#include "util/thread_annotations.h"

namespace diverse {

/// Configuration of a SocketEngine.
struct SocketEngineOptions {
  /// Worker processes to keep alive.
  size_t num_workers = 4;
  /// Path of the worker binary; empty = "<dir of this executable>/diverse_worker".
  std::string worker_binary;
  /// Wire metric name (core/metric.h Name()); must be a built-in metric.
  std::string metric = "euclidean";
  /// Problem solved by Solve/GenSolve tasks.
  DiversityProblem problem = DiversityProblem::kRemoteEdge;
  /// Idle-worker liveness probe period; 0 disables the heartbeat thread.
  uint64_t heartbeat_ms = 0;
  /// Per-RPC reply deadline; 0 means wait forever (tests use small values).
  uint64_t rpc_deadline_ms = 30000;
  /// Respawn attempts per incident before giving up (kUnavailable).
  size_t max_respawn_attempts = 3;
  /// Base of the exponential respawn backoff (ms): backoff * 2^attempt,
  /// shift-clamped and capped at kMaxRespawnBackoffMs (comm/net_io.h).
  uint64_t respawn_backoff_ms = 10;
  /// Request payloads above this size ship as a sequence of bounded
  /// kRequestChunk frames (final slice kRequestLast) instead of one
  /// monolithic kRequest frame, so the worker's streaming decoder overlaps
  /// deserialization with the chunks still in flight. 0 disables chunking.
  size_t chunk_bytes = 256 * 1024;
  /// Per-worker partition-cache budget (bytes), passed to the worker as
  /// --cache-bytes. When > 0 the engine fingerprints cacheable partitions,
  /// re-sends only a by-ref stub on repeat ships of the same content, and
  /// falls back to a full re-ship on a worker-side miss. 0 disables
  /// caching entirely (no fingerprinting, no cache frames).
  size_t worker_cache_bytes = size_t{64} << 20;
};

/// Transport health counters (monotone; read whenever).
struct SocketEngineStats {
  size_t workers_spawned = 0;
  /// Spawns beyond the initial pool — crash/drop/timeout recoveries plus
  /// heartbeat-detected deaths.
  size_t respawns = 0;
  size_t heartbeats_sent = 0;
  size_t heartbeat_failures = 0;
  size_t rpc_errors = 0;
  /// By-ref requests the worker served from its partition cache.
  size_t cache_hits = 0;
  /// By-ref requests that came back kNotFound + cache_miss (evicted or
  /// respawned worker); each was transparently retried as a full ship.
  size_t cache_misses = 0;
  /// kRequestChunk/kRequestLast frames sent (monolithic requests count 0).
  size_t chunks_sent = 0;
  /// Request bytes written to workers, frames included — the ship-volume
  /// half of the distributed bench's ship-vs-compute split.
  size_t request_bytes_sent = 0;
  /// Wall-clock spent fingerprinting, encoding and writing requests.
  double ship_seconds = 0.0;
  /// Wall-clock spent awaiting and reading reply frames.
  double reply_seconds = 0.0;
};

/// CommunicationEngine over forked worker processes. Thread-safe: engine
/// calls from concurrent reducer attempts check workers out of a free list
/// (blocking while all are busy) and return them after the RPC.
class SocketEngine final : public CommunicationEngine {
 public:
  /// Spawns the worker pool; CHECK-fails on empty/invalid options. Call
  /// Healthy() to learn whether every worker came up.
  explicit SocketEngine(const SocketEngineOptions& options);
  ~SocketEngine() override;

  SocketEngine(const SocketEngine&) = delete;
  SocketEngine& operator=(const SocketEngine&) = delete;

  std::string BackendName() const override { return "socket"; }

  /// Drivers should fingerprint partitions once per round exactly when the
  /// worker cache can use the key.
  bool WantsPartitionCacheKeys() const override {
    return options_.worker_cache_bytes > 0;
  }

  StatusOr<PointSet> Coreset(const TaskEnvelope& env, const PointSet& part,
                             const CoresetSpec& spec) override;
  StatusOr<GenCoresetResult> GenCoreset(const TaskEnvelope& env,
                                        const PointSet& part, size_t k,
                                        size_t k_prime) override;
  StatusOr<PointSet> MergeCoresets(const TaskEnvelope& env, const PointSet& a,
                                   const PointSet& b) override;
  StatusOr<PointSet> Solve(const TaskEnvelope& env, const PointSet& aggregate,
                           size_t k) override;
  StatusOr<GeneralizedCoreset> GenSolve(const TaskEnvelope& env,
                                        const GeneralizedCoreset& merged,
                                        size_t k) override;
  StatusOr<PointSet> Instantiate(const TaskEnvelope& env,
                                 const GeneralizedCoreset& selected,
                                 const PointSet& part, double range) override;

  /// OK iff the initial pool fully spawned.
  Status Healthy() const;

  /// Snapshot of the health counters.
  SocketEngineStats stats() const;

  /// PID of the worker at `slot` (tests SIGKILL it externally to exercise
  /// unscripted crash recovery); -1 when the slot is dead.
  pid_t WorkerPidForTest(size_t slot) const;

 private:
  struct Worker {
    Subprocess proc;
    std::string inbuf;   // bytes read but not yet decoded
    bool alive = false;
    size_t slot = 0;
    /// Fingerprints this worker's partition cache is believed to hold.
    /// Advisory only: a stale entry (LRU-evicted worker-side) costs one
    /// by-ref round-trip and a transparent full re-ship, never a wrong
    /// answer. Cleared whenever the worker process is replaced.
    std::unordered_set<uint64_t> cached;
  };

  /// Per-call transport tallies, merged into stats_ under mu_ at the end
  /// of Call (the hot path never takes the lock mid-RPC).
  struct CallTally {
    size_t cache_hits = 0;
    size_t cache_misses = 0;
    size_t chunks_sent = 0;
    size_t request_bytes_sent = 0;
    double ship_seconds = 0.0;
    double reply_seconds = 0.0;
  };

  // Builds the common request envelope for `env`.
  WireRequest MakeRequest(WireTaskType type, const TaskEnvelope& env) const;

  // Full RPC: check out a worker, apply transport faults, ship the request
  // (by-ref when the worker caches `points`, chunked when large), await
  // the reply frame under the deadline, return the worker. `points` is the
  // partition serialized as the request's points section (nullptr: the
  // small req.points — possibly empty — ships inline); `cacheable` opts
  // the partition into worker-side caching.
  StatusOr<WireReply> Call(const TaskEnvelope& env, WireRequest* req,
                           const PointSet* points, bool cacheable);

  // One send/receive exchange on a checked-out worker: frames and writes
  // `payload` (chunking large payloads), then awaits the reply. On failure
  // the worker is dead (or untrusted) and must be respawned by the caller.
  Status Exchange(Worker* w, const TaskEnvelope& env,
                  const std::string& payload, WireReply* reply,
                  CallTally* tally);

  // Heartbeat round-trip on a checked-out worker; false = dead/mute.
  bool PingWorker(Worker* w, uint64_t ack_deadline_ms);

  // Spawns (or respawns) the worker at `slot` with exponential backoff,
  // handshaking each candidate before trusting it.
  Status SpawnSlot(size_t slot, bool is_respawn) DIVERSE_EXCLUDES(mu_);

  // Free-list checkout/checkin.
  Worker* AcquireWorker() DIVERSE_EXCLUDES(mu_);
  void ReleaseWorker(Worker* w, bool healthy) DIVERSE_EXCLUDES(mu_);

  void HeartbeatLoop();

  const SocketEngineOptions options_;
  std::string binary_;

  mutable Mutex mu_;
  CondVar cv_;
  // Sized once in the constructor, never resized (stable pointers). A
  // Worker's fields are owned exclusively by whichever thread holds its
  // slot out of `free_`; mu_ guards only the containers and counters.
  std::vector<Worker> workers_;
  std::vector<size_t> free_ DIVERSE_GUARDED_BY(mu_);
  bool shutdown_ DIVERSE_GUARDED_BY(mu_) = false;
  SocketEngineStats stats_ DIVERSE_GUARDED_BY(mu_);
  Status init_error_ DIVERSE_GUARDED_BY(mu_);

  std::thread heartbeat_thread_;
};

}  // namespace diverse

#endif  // DIVERSE_COMM_SOCKET_ENGINE_H_
