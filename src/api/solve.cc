#include "api/solve.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "core/cover_tree.h"
#include "core/screen.h"
#include "core/sequential.h"
#include "mapreduce/mr_diversity.h"
#include "streaming/streaming_diversity.h"
#include "util/check.h"
#include "util/timer.h"

namespace diverse {

std::string BackendName(Backend backend) {
  switch (backend) {
    case Backend::kSequential:
      return "sequential";
    case Backend::kStreaming:
      return "streaming";
    case Backend::kStreamingTwoPass:
      return "streaming-2pass";
    case Backend::kMapReduce:
      return "mapreduce";
    case Backend::kMapReduceRandomized:
      return "mapreduce-randomized";
    case Backend::kMapReduceGeneralized:
      return "mapreduce-generalized";
    case Backend::kMapReduceRecursive:
      return "mapreduce-recursive";
  }
  return "unknown";
}

Backend ParseBackend(const std::string& name, bool* ok) {
  for (Backend b :
       {Backend::kSequential, Backend::kStreaming, Backend::kStreamingTwoPass,
        Backend::kMapReduce, Backend::kMapReduceRandomized,
        Backend::kMapReduceGeneralized, Backend::kMapReduceRecursive}) {
    if (BackendName(b) == name) {
      if (ok != nullptr) *ok = true;
      return b;
    }
  }
  if (ok != nullptr) *ok = false;
  return Backend::kSequential;
}

namespace {

// Applies the "auto" rules documented on SolveOptions.
SolveOptions Normalize(const SolveOptions& in) {
  SolveOptions o = in;
  if (o.k_prime == 0) o.k_prime = 4 * o.k;
  o.k_prime = std::max(o.k_prime, o.k);
  // num_partitions is intentionally NOT clamped to n: a fleet larger than
  // the input simply runs reducers on empty partitions (the partitioner
  // returns empty tails), matching how a fixed cluster behaves on a small
  // round.
  if (o.num_partitions == 0) o.num_partitions = 8;
  if (o.num_workers == 0) o.num_workers = o.num_partitions;
  if (o.local_memory_budget == 0) {
    o.local_memory_budget = std::max<size_t>(4 * o.k_prime * o.k, 1024);
  }
  return o;
}

SolveResult FromStreaming(const StreamingResult& r) {
  SolveResult out;
  out.solution = r.solution;
  out.diversity = r.diversity;
  out.coreset_size = r.coreset_size;
  return out;
}

SolveResult FromMr(const MrResult& r) {
  SolveResult out;
  out.solution = r.solution;
  out.diversity = r.diversity;
  out.coreset_size = r.coreset_size;
  out.rounds_or_passes = r.rounds;
  out.degraded = r.degraded;
  return out;
}

bool PointIsFinite(const Point& p) {
  const std::vector<float>& vals =
      p.is_sparse() ? p.sparse_values() : p.dense_values();
  for (float v : vals) {
    if (!std::isfinite(v)) return false;
  }
  return true;
}

// The strict-contract checks of TrySolve (Solve keeps its historical
// clamping behavior and skips these).
Status ValidateSolveInput(const PointSet& points, const SolveOptions& o) {
  if (o.k == 0) {
    return InvalidArgumentError("k must be at least 1");
  }
  if (o.k > points.size()) {
    return InvalidArgumentError("k (" + std::to_string(o.k) +
                                ") exceeds the input size (" +
                                std::to_string(points.size()) + ")");
  }
  if (o.k_prime != 0 && o.k_prime < o.k) {
    return InvalidArgumentError("k_prime (" + std::to_string(o.k_prime) +
                                ") must be 0 (auto) or at least k (" +
                                std::to_string(o.k) + ")");
  }
  if ((o.backend == Backend::kStreamingTwoPass ||
       o.backend == Backend::kMapReduceGeneralized) &&
      !RequiresInjectiveProxies(o.problem)) {
    return InvalidArgumentError(
        "backend '" + BackendName(o.backend) +
        "' uses generalized core-sets, which the paper defines only for "
        "injective-proxy problems; '" +
        ProblemName(o.problem) + "' is not one");
  }
  for (size_t i = 0; i < points.size(); ++i) {
    if (!PointIsFinite(points[i])) {
      return InvalidArgumentError("input point " + std::to_string(i) +
                                  " has a non-finite (NaN/inf) coordinate");
    }
  }
  return OkStatus();
}

}  // namespace

namespace {

// The streaming and MapReduce backends consume value-typed points (the
// stream engines copy what they keep; the MR drivers partition and re-lay
// out per reducer), so both Solve overloads funnel through this helper
// without forcing a columnar conversion of the whole input.
StatusOr<SolveResult> TrySolveStreamingOrMr(const PointSet& points,
                                            const Metric& metric,
                                            const SolveOptions& o) {
  SolveResult result;
  switch (o.backend) {
    case Backend::kSequential:
      DIVERSE_CHECK(false);  // handled by the Solve overloads
      break;
    case Backend::kStreaming: {
      StreamingDiversity sd(&metric, o.problem, o.k, o.k_prime);
      for (const Point& p : points) sd.Update(p);
      result = FromStreaming(sd.Finalize());
      result.rounds_or_passes = 1;
      break;
    }
    case Backend::kStreamingTwoPass: {
      TwoPassStreamingDiversity sd(&metric, o.problem, o.k, o.k_prime);
      for (const Point& p : points) sd.UpdateFirstPass(p);
      sd.EndFirstPass();
      for (const Point& p : points) sd.UpdateSecondPass(p);
      result = FromStreaming(sd.Finalize());
      result.rounds_or_passes = 2;
      break;
    }
    case Backend::kMapReduce:
    case Backend::kMapReduceRandomized:
    case Backend::kMapReduceGeneralized:
    case Backend::kMapReduceRecursive: {
      MrOptions mr;
      mr.k = o.k;
      mr.k_prime = o.k_prime;
      mr.num_partitions = o.num_partitions;
      mr.num_workers = o.num_workers;
      mr.seed = o.seed;
      mr.randomized_delegate_cap =
          (o.backend == Backend::kMapReduceRandomized);
      mr.max_retries = o.max_retries;
      mr.task_timeout_ms = o.task_timeout_ms;
      mr.allow_degraded = o.allow_degraded;
      mr.faults = o.faults;
      mr.engine = o.engine;
      mr.tree_reduce = o.tree_reduce;
      MapReduceDiversity driver(&metric, o.problem, mr);
      StatusOr<MrResult> run =
          o.backend == Backend::kMapReduceGeneralized
              ? driver.TryRunGeneralized(points)
              : o.backend == Backend::kMapReduceRecursive
                    ? driver.TryRunRecursive(points, o.local_memory_budget)
                    : driver.TryRun(points);
      if (!run.ok()) return run.status();
      result = FromMr(*run);
      break;
    }
  }
  return result;
}

SolveResult SolveStreamingOrMr(const PointSet& points, const Metric& metric,
                               const SolveOptions& o) {
  StatusOr<SolveResult> result = TrySolveStreamingOrMr(points, metric, o);
  if (!result.ok()) {
    std::fprintf(stderr, "Solve failed: %s\n",
                 result.status().ToString().c_str());
  }
  DIVERSE_CHECK(result.ok());
  return std::move(*result);
}

}  // namespace

SolveResult Solve(const Dataset& data, const Metric& metric,
                  const SolveOptions& options) {
  // Empty input: empty solution with zero diversity, on every backend (the
  // algorithms themselves require n >= 1; the API normalizes the vacuous
  // case so callers feeding live streams need no emptiness pre-check).
  if (data.empty()) return {};
  SolveOptions o = Normalize(options);
  // The flag can only disable screening for this call; when true the
  // process-global default (on unless SetScreeningEnabled(false)) applies.
  ScopedScreening screening_guard(o.screening && ScreeningEnabled());
  ScopedIndexing indexing_guard(o.indexing && IndexingEnabled());
  Timer timer;
  SolveResult result;
  if (o.backend == Backend::kSequential) {
    size_t k = std::min(o.k, data.size());
    std::vector<size_t> picked = SolveSequential(o.problem, data, metric, k);
    for (size_t idx : picked) result.solution.push_back(data.point(idx));
    // Evaluate straight off the dataset rows (tiled restricted matrix);
    // bit-identical to evaluating the copied solution PointSet.
    result.diversity = EvaluateDiversitySubset(o.problem, data, picked, metric);
  } else {
    result = SolveStreamingOrMr(data.points(), metric, o);
  }
  result.seconds = timer.Seconds();
  return result;
}

SolveResult Solve(const PointSet& points, const Metric& metric,
                  const SolveOptions& options) {
  if (points.empty()) return {};  // see the Dataset overload
  Timer timer;
  SolveResult result;
  if (options.backend == Backend::kSequential) {
    // Only the sequential backend runs directly on columnar storage; the
    // shim's one copy happens here, inside the reported wall time.
    result = Solve(Dataset::FromPoints(points), metric, options);
  } else {
    SolveOptions o = Normalize(options);
    ScopedScreening screening_guard(o.screening && ScreeningEnabled());
    ScopedIndexing indexing_guard(o.indexing && IndexingEnabled());
    result = SolveStreamingOrMr(points, metric, o);
  }
  result.seconds = timer.Seconds();
  return result;
}

StatusOr<SolveResult> TrySolve(const Dataset& data, const Metric& metric,
                               const SolveOptions& options) {
  DIVERSE_RETURN_IF_ERROR(ValidateSolveInput(data.points(), options));
  SolveOptions o = Normalize(options);
  ScopedScreening screening_guard(o.screening && ScreeningEnabled());
  ScopedIndexing indexing_guard(o.indexing && IndexingEnabled());
  Timer timer;
  SolveResult result;
  if (o.backend == Backend::kSequential) {
    // k <= n is validated above, so no clamping happens here.
    std::vector<size_t> picked = SolveSequential(o.problem, data, metric, o.k);
    for (size_t idx : picked) result.solution.push_back(data.point(idx));
    result.diversity = EvaluateDiversitySubset(o.problem, data, picked, metric);
  } else {
    StatusOr<SolveResult> run = TrySolveStreamingOrMr(data.points(), metric, o);
    if (!run.ok()) return run.status();
    result = std::move(*run);
  }
  result.seconds = timer.Seconds();
  return result;
}

StatusOr<SolveResult> TrySolve(const PointSet& points, const Metric& metric,
                               const SolveOptions& options) {
  DIVERSE_RETURN_IF_ERROR(ValidateSolveInput(points, options));
  if (options.backend == Backend::kSequential) {
    return TrySolve(Dataset::FromPoints(points), metric, options);
  }
  SolveOptions o = Normalize(options);
  ScopedScreening screening_guard(o.screening && ScreeningEnabled());
  ScopedIndexing indexing_guard(o.indexing && IndexingEnabled());
  Timer timer;
  StatusOr<SolveResult> run = TrySolveStreamingOrMr(points, metric, o);
  if (!run.ok()) return run.status();
  SolveResult result = std::move(*run);
  result.seconds = timer.Seconds();
  return result;
}

}  // namespace diverse
