// Unified front door: one configuration struct and one Solve() call that
// dispatches to the sequential, streaming (1- or 2-pass), or MapReduce
// (2-round, randomized, 3-round generalized, recursive) back end. This is
// the API the CLI tool and most downstream users go through; the individual
// drivers remain available for callers that need streaming Update() hooks
// or custom partitioning.

#ifndef DIVERSE_API_SOLVE_H_
#define DIVERSE_API_SOLVE_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>

#include "core/dataset.h"
#include "core/diversity.h"
#include "core/metric.h"
#include "core/point.h"
#include "mapreduce/mr_diversity.h"
#include "util/status.h"

namespace diverse {

/// Which execution backend to use.
enum class Backend : uint8_t {
  kSequential,
  kStreaming,          // 1 pass (Theorem 3)
  kStreamingTwoPass,   // 2 passes, generalized core-sets (Theorem 9)
  kMapReduce,          // 2 rounds (Theorem 6)
  kMapReduceRandomized,  // 2 rounds, randomized delegate cap (Theorem 7)
  kMapReduceGeneralized,  // 3 rounds, generalized core-sets (Theorem 10)
  kMapReduceRecursive,    // multi-round recursion (Theorem 8)
};

/// Short name, e.g. "streaming".
std::string BackendName(Backend backend);

/// Inverse of BackendName (returns kSequential for unknown names and sets
/// *ok to false if provided).
Backend ParseBackend(const std::string& name, bool* ok = nullptr);

/// Full configuration for Solve().
struct SolveOptions {
  DiversityProblem problem = DiversityProblem::kRemoteEdge;
  Backend backend = Backend::kSequential;
  /// Solution size.
  size_t k = 8;
  /// Core-set kernel size (ignored by kSequential). 0 means "auto": 4k.
  size_t k_prime = 0;
  /// MapReduce: number of partitions / reducers. 0 means "auto": 8.
  size_t num_partitions = 0;
  /// MapReduce: simulated processors. 0 means "auto": num_partitions.
  size_t num_workers = 0;
  /// MapReduce recursive backend: local memory budget in points.
  /// 0 means "auto": max(4 k' k, 1024).
  size_t local_memory_budget = 0;
  /// Mixed-precision screening of the distance-dominated loops
  /// (core/screen.h): fp32 sweeps with certified error bounds decide which
  /// candidates need exact double evaluation. Results are bit-identical
  /// either way — set false to force the exact-only path (A/B benchmarking,
  /// escape hatch). The flag scopes a process-global toggle for the
  /// duration of the call.
  bool screening = true;
  /// Metric-index tier (core/cover_tree.h): cover-tree node bounds prune
  /// whole row ranges above the fp32 screen, and GMM runs its lazy-greedy
  /// traversal, when the metric supports triangle-inequality pruning and
  /// the deterministic profitability probe approves. Bit-identical either
  /// way — set false to pin the flat screened sweeps (A/B benchmarking,
  /// escape hatch). Scopes the process-global toggle like `screening`.
  bool indexing = true;
  uint64_t seed = 1;

  // Fault tolerance (MapReduce backends; see README "Fault tolerance &
  // degradation").
  /// Retries per MapReduce task beyond the first attempt.
  size_t max_retries = 2;
  /// Straggler wall-clock budget per task attempt in ms (0 disables the
  /// timeout; stragglers past it race a speculative duplicate).
  uint64_t task_timeout_ms = 0;
  /// Complete on surviving partitions (reporting SolveResult::degraded)
  /// when a core-set partition permanently fails, instead of failing the
  /// whole solve.
  bool allow_degraded = true;
  /// Deterministic fault schedule for testing recovery paths; not owned,
  /// must outlive the call. Null = fault-free execution.
  const FaultInjector* faults = nullptr;

  // Distributed runtime (MapReduce backends; see README "Distributed
  // runtime").
  /// Execution backend for MapReduce task compute. Null = in-process
  /// loopback (bit-identical to the historical simulator); a SocketEngine
  /// runs tasks in worker processes, streaming large partitions in bounded
  /// chunks and caching them worker-side by content fingerprint so repeated
  /// solves and retries ship a by-ref stub instead of the bytes (see
  /// SocketEngineOptions::chunk_bytes / worker_cache_bytes). Not owned;
  /// must outlive the call.
  CommunicationEngine* engine = nullptr;
  /// Aggregate round-1 core-sets through a binary merge tree instead of a
  /// single concatenation (bit-identical result; exercises multi-round
  /// shuffle).
  bool tree_reduce = false;
};

/// Outcome of Solve().
struct SolveResult {
  /// The selected points (k, or fewer if the input was smaller).
  PointSet solution;
  /// div(solution) under options.problem.
  double diversity = 0.0;
  /// Core-set the final sequential step ran on (0 for kSequential).
  size_t coreset_size = 0;
  /// Rounds (MapReduce) or passes (streaming); 0 for kSequential.
  size_t rounds_or_passes = 0;
  /// Wall time of the whole solve, seconds.
  double seconds = 0.0;
  /// Present iff a MapReduce backend completed by dropping permanently
  /// failed partitions: the certificate of what guarantee remains.
  std::optional<DegradedResult> degraded;
};

/// Solves diversity maximization on the rows of `data` with the configured
/// backend. `metric` must outlive the call. An empty input yields an empty
/// solution with zero diversity on every backend.
/// Backends that need injective proxies reject remote-edge/remote-cycle
/// inputs only where the paper's algorithm is undefined
/// (kStreamingTwoPass and kMapReduceGeneralized); everything else accepts
/// all six problems. Every backend runs its distance-dominated loops on the
/// columnar batch kernels; callers that solve repeatedly on one input
/// should build the Dataset once and use this overload.
SolveResult Solve(const Dataset& data, const Metric& metric,
                  const SolveOptions& options);

/// Shim: copies `points` into a Dataset and solves on it.
SolveResult Solve(const PointSet& points, const Metric& metric,
                  const SolveOptions& options);

/// Strictly validated entry point. Unlike Solve() — which keeps its
/// historical clamping contract (k > n is clamped to n, empty input yields
/// an empty result) — TrySolve rejects structurally invalid requests with a
/// structured error instead of silently adjusting them:
///   * kInvalidArgument: k == 0; k > n (including empty input); k' < k;
///     a non-finite (NaN/inf) input coordinate; a backend/problem pairing
///     the paper's algorithms are undefined for (generalized core-set
///     backends on non-injective-proxy problems).
/// MapReduce task failures surface as the underlying driver error
/// (kDataLoss, kAborted, ...) when recovery and degradation cannot
/// complete the run.
DIVERSE_MUST_USE StatusOr<SolveResult> TrySolve(
    const Dataset& data, const Metric& metric, const SolveOptions& options);

/// Shim: validates `points` and solves on a Dataset copy.
DIVERSE_MUST_USE StatusOr<SolveResult> TrySolve(
    const PointSet& points, const Metric& metric,
    const SolveOptions& options);

}  // namespace diverse

#endif  // DIVERSE_API_SOLVE_H_
