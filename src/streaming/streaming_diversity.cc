#include "streaming/streaming_diversity.h"

#include <algorithm>
#include <limits>

#include "core/sequential.h"
#include "util/check.h"

namespace diverse {

StreamingDiversity::StreamingDiversity(const Metric* metric,
                                       DiversityProblem problem, size_t k,
                                       size_t k_prime)
    : metric_(metric), problem_(problem), k_(k) {
  if (RequiresInjectiveProxies(problem)) {
    smm_ext_ = std::make_unique<SmmExt>(metric, k, k_prime);
  } else {
    smm_ = std::make_unique<Smm>(metric, k, k_prime);
  }
}

void StreamingDiversity::Update(const Point& p) {
  if (smm_) {
    smm_->Update(p);
    peak_memory_ = std::max(peak_memory_, smm_->engine().StoredPoints());
  } else {
    smm_ext_->Update(p);
    peak_memory_ = std::max(peak_memory_, smm_ext_->engine().StoredPoints());
  }
}

void StreamingDiversity::UpdateAll(const Dataset& data) {
  for (const Point& p : data.points()) Update(p);
}

StreamingResult StreamingDiversity::Finalize() {
  StreamingResult result;
  PointSet coreset = smm_ ? smm_->Finalize() : smm_ext_->Finalize();
  result.coreset_size = coreset.size();
  result.peak_memory_points = peak_memory_;
  result.phases =
      smm_ ? smm_->engine().phases() : smm_ext_->engine().phases();

  size_t k = std::min(k_, coreset.size());
  if (k == 0) return result;
  Dataset coreset_data(std::move(coreset));
  std::vector<size_t> picked =
      SolveSequential(problem_, coreset_data, *metric_, k);
  result.solution.reserve(picked.size());
  for (size_t idx : picked) {
    result.solution.push_back(coreset_data.point(idx));
  }
  result.diversity = EvaluateDiversity(problem_, result.solution, *metric_);
  return result;
}

TwoPassStreamingDiversity::TwoPassStreamingDiversity(const Metric* metric,
                                                     DiversityProblem problem,
                                                     size_t k, size_t k_prime)
    : metric_(metric),
      problem_(problem),
      k_(k),
      smm_gen_(metric, k, k_prime) {
  DIVERSE_CHECK(RequiresInjectiveProxies(problem));
}

void TwoPassStreamingDiversity::UpdateFirstPass(const Point& p) {
  DIVERSE_CHECK(!first_pass_done_);
  smm_gen_.Update(p);
  peak_memory_ = std::max(peak_memory_, smm_gen_.engine().StoredPoints());
}

void TwoPassStreamingDiversity::UpdateAllFirstPass(const Dataset& data) {
  for (const Point& p : data.points()) UpdateFirstPass(p);
}

void TwoPassStreamingDiversity::UpdateAllSecondPass(const Dataset& data) {
  for (const Point& p : data.points()) UpdateSecondPass(p);
}

void TwoPassStreamingDiversity::EndFirstPass() {
  DIVERSE_CHECK(!first_pass_done_);
  first_pass_done_ = true;
  phases_ = smm_gen_.engine().phases();
  GeneralizedCoreset coreset = smm_gen_.Finalize();
  coreset_size_ = coreset.size();

  size_t k = std::min(k_, coreset.ExpandedSize());
  if (k == 0) return;
  selected_ = SolveSequentialGeneralized(problem_, coreset, *metric_, k);

  // Counts can migrate across merged centers, adding one 2*d_i hop per
  // merge; the geometric threshold growth bounds the total detour by one
  // extra CoverageRadiusBound (see the k' = (64/eps')^D constant of
  // Theorem 9 vs the (32/eps')^D of Theorem 1). Hence delta = 2 * (4 d_l).
  delta_ = 2.0 * smm_gen_.CoverageRadiusBound();
  candidates_.assign(selected_.size(), PointSet{});
}

void TwoPassStreamingDiversity::UpdateSecondPass(const Point& p) {
  DIVERSE_CHECK(first_pass_done_);
  // Assign p to the eligible (within delta) selected entry with the largest
  // unmet need. Each point joins at most one candidate list, so the
  // instantiation's disjointness is automatic.
  size_t best = selected_.size();
  size_t best_need = 0;
  for (size_t j = 0; j < selected_.size(); ++j) {
    size_t have = candidates_[j].size();
    size_t want = selected_.entries()[j].multiplicity;
    if (have >= want) continue;
    size_t need = want - have;
    if (need > best_need &&
        metric_->Distance(p, selected_.entries()[j].point) <= delta_) {
      best = j;
      best_need = need;
    }
  }
  if (best < selected_.size()) candidates_[best].push_back(p);
}

StreamingResult TwoPassStreamingDiversity::Finalize() {
  DIVERSE_CHECK(first_pass_done_);
  StreamingResult result;
  result.coreset_size = coreset_size_;
  result.peak_memory_points = peak_memory_;
  result.phases = phases_;
  for (size_t j = 0; j < selected_.size(); ++j) {
    for (const Point& p : candidates_[j]) result.solution.push_back(p);
  }
  if (!result.solution.empty()) {
    result.diversity = EvaluateDiversity(problem_, result.solution, *metric_);
  }
  return result;
}

}  // namespace diverse
