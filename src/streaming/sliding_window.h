// Sliding-window diversity maximization — an extension beyond the paper.
//
// The paper's streaming algorithms summarize the *entire* stream; many
// deployments (live feeds, monitoring) want the k most diverse items among
// the most recent W points. Composable core-sets give this almost for free
// in the time dimension: split the stream into blocks of size B, keep one
// SMM(-EXT) core-set per block for the ceil(W/B) most recent blocks, and on
// query solve the sequential problem on the union of the retained block
// core-sets (plus the running core-set of the partially-filled current
// block). A window is a disjoint union of (at most) full blocks, so the
// union of their core-sets satisfies the proxy conditions of Lemmas 1/2 for
// the window, exactly like the per-partition core-sets of the MapReduce
// algorithm do for the whole input.
//
// Window semantics are count-based and block-granular: Query() covers
// between W and W + B - 1 of the most recent points (the retained blocks
// always include the last W points; the oldest retained block may
// additionally contain up to B - 1 older points). Memory:
// O((W / B) * coreset-size) — independent of the total stream length.

#ifndef DIVERSE_STREAMING_SLIDING_WINDOW_H_
#define DIVERSE_STREAMING_SLIDING_WINDOW_H_

#include <cstddef>
#include <deque>
#include <memory>

#include "core/diversity.h"
#include "core/metric.h"
#include "core/point.h"
#include "streaming/smm.h"
#include "streaming/streaming_diversity.h"

namespace diverse {

/// Configuration of the sliding-window summarizer.
struct SlidingWindowOptions {
  /// Diversity objective.
  DiversityProblem problem = DiversityProblem::kRemoteEdge;
  /// Solution size.
  size_t k = 8;
  /// Core-set kernel size per block (k' of the paper).
  size_t k_prime = 32;
  /// Window size in points.
  size_t window = 10000;
  /// Block size in points. 0 means "auto": max(window / 8, k').
  size_t block = 0;
};

/// Maintains per-block streaming core-sets for the last `window` points and
/// answers diversity queries over the (block-granular) window.
///
/// Thread-compatibility contract: single-threaded, like the SMM engines it
/// wraps (see smm.h) — Update/Query mutate block state and the columnar
/// query mirror without locking. One instance per stream consumer;
/// concurrent callers must serialize externally.
class SlidingWindowDiversity {
 public:
  /// `metric` must outlive this object. Requires k >= 1, k_prime >= k,
  /// window >= block.
  SlidingWindowDiversity(const Metric* metric,
                         const SlidingWindowOptions& options);

  /// Processes one stream point.
  void Update(const Point& p);

  /// Solves on the union of retained block core-sets. May be called any
  /// number of times, at any point of the stream.
  StreamingResult Query() const;

  /// Number of points processed so far.
  size_t points_processed() const { return points_processed_; }

  /// Number of retained full-block core-sets.
  size_t retained_blocks() const { return blocks_.size(); }

  /// Points currently held across all retained core-sets and the running
  /// block engine (the memory figure bounded by (W/B) * coreset size).
  size_t StoredPoints() const;

  /// High-water mark of StoredPoints() over the whole stream so far,
  /// sampled after every Update and around every block seal. Unlike
  /// StoredPoints() this is a true peak: blocks sealed and evicted between
  /// queries still count toward it. Query() reports this figure as
  /// peak_memory_points.
  size_t PeakStoredPoints() const { return peak_stored_points_; }

 private:
  // One full block's frozen core-set.
  struct Block {
    PointSet coreset;
  };

  // (Re)creates the engine for a fresh block.
  void StartBlock();
  // Freezes the running block into blocks_ and trims expired blocks.
  void SealBlock();

  const Metric* metric_;
  SlidingWindowOptions options_;
  size_t max_blocks_ = 0;

  std::deque<Block> blocks_;
  // Engine of the currently-filling block (exactly one of the two is live,
  // chosen by problem family).
  std::unique_ptr<Smm> running_smm_;
  std::unique_ptr<SmmExt> running_smm_ext_;
  size_t running_count_ = 0;
  size_t points_processed_ = 0;
  size_t peak_stored_points_ = 0;
};

}  // namespace diverse

#endif  // DIVERSE_STREAMING_SLIDING_WINDOW_H_
