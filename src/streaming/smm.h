// SMM: streaming core-set constructions (Section 4 of the paper).
//
// All three constructions are variants of the doubling algorithm of
// Charikar-Chekuri-Feder-Motwani for streaming k-center, run with k' >= k
// centers. The algorithm proceeds in phases; phase i has a distance
// threshold d_i and maintains a set T of at most k'+1 centers such that
// (1) every processed point is within 2 d_i of T and (2) centers are
// pairwise more than d_i apart. A phase starts with a *merge* step (replace
// T by a maximal independent set of the threshold graph at radius 2 d_i) and
// continues with an *update* step (stream points farther than 4 d_i from T
// become centers; others are discarded) until T overflows to k'+1 centers,
// when the threshold doubles.
//
// The three variants differ in what is kept besides the centers:
//   * Smm      — centers only, plus the removed set M of the current phase
//                so that the final core-set can be padded to >= k points
//                (the paper's modification). (1+eps)-core-set for
//                remote-edge / remote-cycle (Theorem 1).
//   * SmmExt   — every center t carries a delegate set E_t of at most k
//                points (including t); delegates migrate on merges.
//                (1+eps)-core-set for the four injective-proxy problems
//                (Theorem 2).
//   * SmmGen   — like SmmExt but stores only |E_t| as a multiplicity,
//                yielding a *generalized* core-set for the 2-pass algorithm
//                of Theorem 9.

#ifndef DIVERSE_STREAMING_SMM_H_
#define DIVERSE_STREAMING_SMM_H_

#include <cstddef>
#include <vector>

#include "core/dataset.h"
#include "core/generalized_coreset.h"
#include "core/metric.h"
#include "core/point.h"
#include "core/screen.h"

namespace diverse {

namespace internal_smm {

/// Shared phase machinery of the SMM family. Not a public API.
///
/// Thread-compatibility contract: every SMM engine (and the columnar
/// mirror it maintains for the merge step) is a SINGLE-THREADED state
/// machine — Update/Merge mutate the center set and mirror with no
/// internal locking, by design: a stream has one consumer, and wrapping
/// every point in a mutex would dominate the per-point work. Concurrent
/// use requires one engine instance per thread (the MapReduce driver does
/// exactly this) or external serialization by the caller. Distinct
/// instances share nothing mutable, so per-thread engines need no locks.
class SmmEngine {
 public:
  enum class Mode { kCentersOnly, kDelegates, kCounts };

  /// `metric` must outlive the engine. k <= k_prime required.
  SmmEngine(const Metric* metric, size_t k, size_t k_prime, Mode mode);

  /// Processes one stream point.
  void Update(const Point& p);

  /// Number of stream points processed so far.
  size_t points_processed() const { return points_processed_; }

  /// Current phase threshold d_i (0 while still initializing).
  double threshold() const { return threshold_; }

  /// Number of completed merge steps (phases entered).
  size_t phases() const { return phases_; }

  /// Number of points currently held in memory (centers + delegates + the
  /// removed set M). This is the quantity bounded by Theorems 1/2/9.
  size_t StoredPoints() const;

  /// Upper bound on max_p d(p, centers) for all processed points: 4 d_i of
  /// the last phase (r_T <= 4 d_l in the proofs of Lemmas 3/4).
  double CoverageRadiusBound() const { return 4.0 * threshold_; }

  /// Centers currently in T (valid any time; used by tests to check the
  /// pairwise-separation invariant).
  PointSet Centers() const;

  /// Finalizes in kCentersOnly mode: centers padded from M to >= k points
  /// when possible (padding is skipped only if the whole stream had fewer
  /// points).
  PointSet FinalizeCenters();

  /// Finalizes in kDelegates mode: the union of all delegate sets.
  PointSet FinalizeDelegates();

  /// Finalizes in kCounts mode: the generalized core-set
  /// {(t, m_t) : t in T}.
  GeneralizedCoreset FinalizeCounts();

 private:
  struct Entry {
    Point center;
    PointSet delegates;  // kDelegates mode; includes center, |.| <= k
    size_t count = 1;    // kCounts mode; includes center, <= k
  };

  // Runs merge steps (possibly several, doubling the threshold in between)
  // until at most k_prime centers remain. Called when T reaches k'+1.
  void MergeUntilBelowCapacity();

  // One maximal-independent-set merge at radius 2 * threshold_.
  void MergeStep();

  const Metric* metric_;
  size_t k_;
  size_t k_prime_;
  Mode mode_;

  std::vector<Entry> centers_;
  // Columnar mirror of the centers in `centers_` (same order), so the
  // per-update nearest-center scan runs as one screened devirtualized sweep
  // (core/screen.h) instead of |T| virtual Distance calls, the
  // phase-threshold pairwise scans run as blocked distance tiles
  // (DistanceMatrix over the mirror), and merge steps scan their growing
  // kept mirror in chunked screened threshold sweeps. Appended to on
  // insertion, replaced by the kept mirror after merges.
  Dataset centers_columnar_;
  // Persistent screen contexts for the two screened sweep shapes above: the
  // per-update nearest-center scan and the merge-step membership scan. The
  // cached fp32 cutoffs replay across calls while the mirror's aggregate
  // statistics and the phase threshold stay put (rebuilds are O(stat
  // changes), not O(points)); results are bit-identical either way.
  PersistentScreenContext update_ctx_;
  PersistentScreenContext merge_ctx_;
  PointSet removed_;  // M: points dropped in the current phase's merges
  double threshold_ = 0.0;
  bool initializing_ = true;
  size_t points_processed_ = 0;
  size_t phases_ = 0;
};

}  // namespace internal_smm

/// Streaming core-set for remote-edge / remote-cycle (Theorem 1).
/// Memory: O(k') points. Use k' = (32/eps')^D * k for the (1+eps) guarantee
/// on doubling dimension D; in practice small multiples of k suffice
/// (Section 7.1).
class Smm {
 public:
  Smm(const Metric* metric, size_t k, size_t k_prime)
      : engine_(metric, k, k_prime, internal_smm::SmmEngine::Mode::kCentersOnly) {}

  /// Processes one stream point.
  void Update(const Point& p) { engine_.Update(p); }

  /// Returns the core-set (at least min(k, stream size) points).
  PointSet Finalize() { return engine_.FinalizeCenters(); }

  const internal_smm::SmmEngine& engine() const { return engine_; }

 private:
  internal_smm::SmmEngine engine_;
};

/// Streaming core-set for remote-clique/-star/-bipartition/-tree
/// (Theorem 2). Memory: O(k' k) points.
class SmmExt {
 public:
  SmmExt(const Metric* metric, size_t k, size_t k_prime)
      : engine_(metric, k, k_prime, internal_smm::SmmEngine::Mode::kDelegates) {}

  void Update(const Point& p) { engine_.Update(p); }

  /// Returns the delegate-augmented core-set T' = union of E_t.
  PointSet Finalize() { return engine_.FinalizeDelegates(); }

  const internal_smm::SmmEngine& engine() const { return engine_; }

 private:
  internal_smm::SmmEngine engine_;
};

/// Streaming *generalized* core-set (first pass of Theorem 9).
/// Memory: O(k') pairs.
class SmmGen {
 public:
  SmmGen(const Metric* metric, size_t k, size_t k_prime)
      : engine_(metric, k, k_prime, internal_smm::SmmEngine::Mode::kCounts) {}

  void Update(const Point& p) { engine_.Update(p); }

  /// Returns the generalized core-set {(t, m_t)}.
  GeneralizedCoreset Finalize() { return engine_.FinalizeCounts(); }

  /// Radius within which every stream point has a kernel point; the
  /// delta used by the second (instantiation) pass.
  double CoverageRadiusBound() const { return engine_.CoverageRadiusBound(); }

  const internal_smm::SmmEngine& engine() const { return engine_; }

 private:
  internal_smm::SmmEngine engine_;
};

}  // namespace diverse

#endif  // DIVERSE_STREAMING_SMM_H_
