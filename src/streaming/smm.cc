#include "streaming/smm.h"

#include <limits>
#include <utility>

#include "core/distance_matrix.h"
#include "core/screen.h"
#include "util/check.h"

namespace diverse {
namespace internal_smm {

SmmEngine::SmmEngine(const Metric* metric, size_t k, size_t k_prime, Mode mode)
    : metric_(metric), k_(k), k_prime_(k_prime), mode_(mode) {
  DIVERSE_CHECK(metric != nullptr);
  DIVERSE_CHECK_GE(k, 1u);
  DIVERSE_CHECK_GE(k_prime, k);
}

void SmmEngine::Update(const Point& p) {
  ++points_processed_;
  if (initializing_) {
    Entry e;
    e.center = p;
    if (mode_ == Mode::kDelegates) e.delegates.push_back(p);
    centers_.push_back(std::move(e));
    centers_columnar_.Append(p);
    if (centers_.size() == k_prime_ + 1) {
      // d_1 = min pairwise distance among the first k'+1 points, computed
      // as one tiled pairwise pass over the columnar center mirror.
      DistanceMatrix pairwise(centers_columnar_, *metric_);
      double d1 = std::numeric_limits<double>::infinity();
      for (size_t i = 0; i < pairwise.size(); ++i) {
        for (size_t j = i + 1; j < pairwise.size(); ++j) {
          d1 = std::min(d1, pairwise.at(i, j));
        }
      }
      threshold_ = d1;
      initializing_ = false;
      MergeUntilBelowCapacity();
    }
    return;
  }

  // Update step of the current phase: one fused screened "argmin +
  // threshold" sweep over the columnar center mirror. When the fp32 pass
  // certifies that every center is beyond 4 d_i, the point opens a new
  // center with zero exact evaluations; otherwise the exact first-strict
  // argmin decides the host. Either way the decision is bit-identical to
  // the exact batched sweep it falls back to when screening is off, and —
  // unlike the pre-fusion sweep — it screens at any dimension (no
  // >=8-coords-per-row gate).
  ScreenedNearest nearest =
      ScreenedArgClosestWithin(*metric_, p, centers_columnar_,
                               4.0 * threshold_, &update_ctx_);
  if (nearest.beyond || nearest.dist > 4.0 * threshold_) {
    Entry e;
    e.center = p;
    if (mode_ == Mode::kDelegates) e.delegates.push_back(p);
    centers_.push_back(std::move(e));
    centers_columnar_.Append(p);
    if (centers_.size() == k_prime_ + 1) {
      threshold_ *= 2.0;
      MergeUntilBelowCapacity();
    }
    return;
  }
  // Covered point: delegate bookkeeping in the EXT/GEN variants, plain
  // discard in base SMM.
  Entry& host = centers_[nearest.index];
  if (mode_ == Mode::kDelegates && host.delegates.size() < k_) {
    host.delegates.push_back(p);
  } else if (mode_ == Mode::kCounts && host.count < k_) {
    ++host.count;
  }
}

void SmmEngine::MergeUntilBelowCapacity() {
  ++phases_;
  removed_.clear();
  for (;;) {
    MergeStep();
    if (centers_.size() <= k_prime_) return;
    // The independent set still overflows: the phase had an empty update
    // step; double the threshold and merge again. A zero threshold (possible
    // with duplicate points in the initial fill) cannot make progress by
    // doubling, so jump directly to the smallest positive separation.
    if (threshold_ > 0.0) {
      threshold_ *= 2.0;
    } else {
      DistanceMatrix pairwise(centers_columnar_, *metric_);
      double min_positive = std::numeric_limits<double>::infinity();
      for (size_t i = 0; i < pairwise.size(); ++i) {
        for (size_t j = i + 1; j < pairwise.size(); ++j) {
          double dist = pairwise.at(i, j);
          if (dist > 0.0) min_positive = std::min(min_positive, dist);
        }
      }
      DIVERSE_CHECK_LT(min_positive,
                       std::numeric_limits<double>::infinity());
      threshold_ = min_positive;
    }
    ++phases_;
  }
}

void SmmEngine::MergeStep() {
  // Greedy maximal independent set of the graph with edges at distance
  // <= 2 d_i: scan centers in order; a center joins I unless an earlier
  // member of I is within 2 d_i, in which case it merges into that member
  // (the maximality witness), transferring delegates / counts. The kept
  // set grows its own columnar mirror as it goes, so the membership scan
  // runs as chunked screened threshold sweeps over contiguous rows
  // (certainly-within and certainly-beyond fp32 verdicts need no exact
  // evaluation; only band hits do), keeping the old scalar loop's early
  // exit to within one chunk (a merge-heavy step costs ~|T| evaluations,
  // not |T|^2/2) and returning the exact scan's first host. The mirror
  // then becomes the post-merge centers_columnar_.
  double radius = 2.0 * threshold_;
  std::vector<Entry> kept;
  kept.reserve(centers_.size());
  Dataset kept_mirror;  // columnar mirror of `kept`, same order
  for (Entry& e : centers_) {
    size_t host = ScreenedFirstWithin(*metric_, e.center, kept_mirror, radius,
                                      &merge_ctx_);
    if (host == kept.size()) {
      kept_mirror.Append(e.center);
      kept.push_back(std::move(e));
      continue;
    }
    Entry& h = kept[host];
    switch (mode_) {
      case Mode::kCentersOnly:
        removed_.push_back(std::move(e.center));
        break;
      case Mode::kDelegates: {
        size_t room = k_ - h.delegates.size();
        size_t take = std::min(room, e.delegates.size());
        for (size_t t = 0; t < take; ++t) {
          h.delegates.push_back(std::move(e.delegates[t]));
        }
        break;
      }
      case Mode::kCounts:
        h.count += std::min(e.count, k_ - h.count);
        break;
    }
  }
  centers_ = std::move(kept);
  // The kept mirror is exactly the surviving centers, in order.
  centers_columnar_ = std::move(kept_mirror);
}

size_t SmmEngine::StoredPoints() const {
  size_t n = 0;
  switch (mode_) {
    case Mode::kCentersOnly:
      n = centers_.size() + removed_.size();
      break;
    case Mode::kDelegates:
      for (const Entry& e : centers_) n += e.delegates.size();
      break;
    case Mode::kCounts:
      n = centers_.size();
      break;
  }
  return n;
}

PointSet SmmEngine::Centers() const {
  PointSet out;
  out.reserve(centers_.size());
  for (const Entry& e : centers_) out.push_back(e.center);
  return out;
}

PointSet SmmEngine::FinalizeCenters() {
  DIVERSE_CHECK(mode_ == Mode::kCentersOnly);
  PointSet out = Centers();
  // The paper's modification: if fewer than k centers survive the last
  // phase, pad with arbitrary points removed by its merge step
  // (|M| + |T| >= k'+1 >= k whenever the stream had that many points).
  size_t i = 0;
  while (out.size() < k_ && i < removed_.size()) {
    out.push_back(removed_[i++]);
  }
  return out;
}

PointSet SmmEngine::FinalizeDelegates() {
  DIVERSE_CHECK(mode_ == Mode::kDelegates);
  PointSet out;
  for (const Entry& e : centers_) {
    for (const Point& p : e.delegates) out.push_back(p);
  }
  return out;
}

GeneralizedCoreset SmmEngine::FinalizeCounts() {
  DIVERSE_CHECK(mode_ == Mode::kCounts);
  GeneralizedCoreset out;
  for (const Entry& e : centers_) out.Add(e.center, e.count);
  return out;
}

}  // namespace internal_smm
}  // namespace diverse
