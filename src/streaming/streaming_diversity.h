// End-to-end streaming diversity maximization.
//
//   * StreamingDiversity — the 1-pass algorithm of Theorem 3: run SMM
//     (remote-edge / remote-cycle) or SMM-EXT (the other four problems) over
//     the stream, then run the sequential alpha-approximation on the
//     in-memory core-set. Approximation alpha + eps, memory independent of
//     the stream length.
//   * TwoPassStreamingDiversity — the algorithm of Theorem 9 for the four
//     injective-proxy problems: pass 1 builds a *generalized* core-set with
//     SMM-GEN and solves the multiset problem on it (Fact 2); pass 2
//     materializes ("instantiates") distinct delegates for each selected
//     kernel point. Approximation alpha + eps with memory O((alpha^2/eps)^D k)
//     — a factor k less than the 1-pass variant.

#ifndef DIVERSE_STREAMING_STREAMING_DIVERSITY_H_
#define DIVERSE_STREAMING_STREAMING_DIVERSITY_H_

#include <cstddef>
#include <memory>
#include <vector>

#include "core/dataset.h"
#include "core/diversity.h"
#include "core/generalized_coreset.h"
#include "core/metric.h"
#include "core/point.h"
#include "streaming/smm.h"

namespace diverse {

/// Outcome of a streaming run.
struct StreamingResult {
  /// The k (or fewer, if the stream was shorter) selected points.
  PointSet solution;
  /// div(solution) under the configured objective.
  double diversity = 0.0;
  /// Size of the core-set the sequential algorithm ran on.
  size_t coreset_size = 0;
  /// Peak number of points held in memory during the pass(es).
  size_t peak_memory_points = 0;
  /// Number of SMM phases executed.
  size_t phases = 0;
};

/// One-pass streaming diversity maximization (Theorem 3).
class StreamingDiversity {
 public:
  /// `metric` must outlive this object. Requires 1 <= k <= k_prime.
  /// k_prime controls core-set size and hence accuracy: theory wants
  /// k' = (32/eps')^D k (SMM) or (64/eps')^D k (SMM-EXT); in practice small
  /// multiples of k already give ratios close to 1 (paper Section 7.1).
  StreamingDiversity(const Metric* metric, DiversityProblem problem, size_t k,
                     size_t k_prime);

  /// Processes one stream point.
  void Update(const Point& p);

  /// Streams every row of a columnar dataset through Update().
  void UpdateAll(const Dataset& data);

  /// Ends the stream: solves on the core-set (itself re-laid out as a
  /// columnar Dataset for the batched sequential solve) and returns the
  /// solution.
  StreamingResult Finalize();

  /// Peak in-memory points so far (exposed for Table 3 accounting).
  size_t peak_memory_points() const { return peak_memory_; }

 private:
  const Metric* metric_;
  DiversityProblem problem_;
  size_t k_;
  // Exactly one of the two engines is live, chosen by problem family.
  std::unique_ptr<Smm> smm_;
  std::unique_ptr<SmmExt> smm_ext_;
  size_t peak_memory_ = 0;
};

/// Two-pass streaming algorithm for remote-clique / -star / -bipartition /
/// -tree (Theorem 9). Drive it as:
///   pass 1: UpdateFirstPass(p) for each point; then EndFirstPass();
///   pass 2: UpdateSecondPass(p) for each point; then Finalize().
class TwoPassStreamingDiversity {
 public:
  /// Requires an injective-proxy problem (see RequiresInjectiveProxies).
  TwoPassStreamingDiversity(const Metric* metric, DiversityProblem problem,
                            size_t k, size_t k_prime);

  void UpdateFirstPass(const Point& p);

  /// Streams every row of a columnar dataset through UpdateFirstPass().
  void UpdateAllFirstPass(const Dataset& data);

  /// Solves the multiset problem on the generalized core-set, fixing the
  /// kernel points and multiplicities the second pass must instantiate.
  void EndFirstPass();

  void UpdateSecondPass(const Point& p);

  /// Streams every row of a columnar dataset through UpdateSecondPass().
  void UpdateAllSecondPass(const Dataset& data);

  /// Returns the instantiated solution (k distinct input points).
  StreamingResult Finalize();

  /// The coherent subset T-hat chosen after pass 1 (for tests).
  const GeneralizedCoreset& selected() const { return selected_; }

  /// The instantiation radius delta used in pass 2.
  double delta() const { return delta_; }

 private:
  const Metric* metric_;
  DiversityProblem problem_;
  size_t k_;
  SmmGen smm_gen_;
  GeneralizedCoreset selected_;
  double delta_ = 0.0;
  bool first_pass_done_ = false;
  // Pass-2 state: candidates[j] collects delegates for selected_ entry j.
  std::vector<PointSet> candidates_;
  size_t peak_memory_ = 0;
  size_t phases_ = 0;
  size_t coreset_size_ = 0;
};

}  // namespace diverse

#endif  // DIVERSE_STREAMING_STREAMING_DIVERSITY_H_
