#include "streaming/sliding_window.h"

#include <algorithm>

#include "core/sequential.h"
#include "util/check.h"

namespace diverse {

SlidingWindowDiversity::SlidingWindowDiversity(
    const Metric* metric, const SlidingWindowOptions& options)
    : metric_(metric), options_(options) {
  DIVERSE_CHECK(metric != nullptr);
  DIVERSE_CHECK_GE(options_.k, 1u);
  DIVERSE_CHECK_GE(options_.k_prime, options_.k);
  if (options_.block == 0) {
    options_.block = std::max(options_.window / 8, options_.k_prime);
  }
  DIVERSE_CHECK_GE(options_.window, options_.block);
  // Retained full blocks: enough that the retained span always covers the
  // last `window` points once that many have arrived.
  max_blocks_ = (options_.window + options_.block - 1) / options_.block;
  StartBlock();
}

void SlidingWindowDiversity::StartBlock() {
  if (RequiresInjectiveProxies(options_.problem)) {
    running_smm_ext_ = std::make_unique<SmmExt>(metric_, options_.k,
                                                options_.k_prime);
    running_smm_.reset();
  } else {
    running_smm_ =
        std::make_unique<Smm>(metric_, options_.k, options_.k_prime);
    running_smm_ext_.reset();
  }
  running_count_ = 0;
}

void SlidingWindowDiversity::SealBlock() {
  Block block;
  block.coreset =
      running_smm_ ? running_smm_->Finalize() : running_smm_ext_->Finalize();
  blocks_.push_back(std::move(block));
  while (blocks_.size() > max_blocks_) blocks_.pop_front();
  StartBlock();
  // Sample the post-seal residency (sealed core-set retained, fresh
  // engine): together with the per-Update samples this makes the high-water
  // mark cover every steady state the summary passes through, including
  // blocks that are evicted again before the next Query().
  peak_stored_points_ = std::max(peak_stored_points_, StoredPoints());
}

void SlidingWindowDiversity::Update(const Point& p) {
  if (running_smm_) {
    running_smm_->Update(p);
  } else {
    running_smm_ext_->Update(p);
  }
  ++running_count_;
  ++points_processed_;
  peak_stored_points_ = std::max(peak_stored_points_, StoredPoints());
  if (running_count_ == options_.block) SealBlock();
}

StreamingResult SlidingWindowDiversity::Query() const {
  StreamingResult result;
  PointSet united;
  for (const Block& b : blocks_) {
    united.insert(united.end(), b.coreset.begin(), b.coreset.end());
  }
  if (running_count_ > 0) {
    // Snapshot the running block: engines are value types, so finalize a
    // copy without disturbing the live one.
    if (running_smm_) {
      Smm copy = *running_smm_;
      PointSet c = copy.Finalize();
      united.insert(united.end(), c.begin(), c.end());
    } else {
      SmmExt copy = *running_smm_ext_;
      PointSet c = copy.Finalize();
      united.insert(united.end(), c.begin(), c.end());
    }
  }
  result.coreset_size = united.size();
  // Report the running high-water mark, not the instantaneous residency:
  // blocks sealed and evicted between queries would otherwise be invisible.
  result.peak_memory_points = std::max(peak_stored_points_, StoredPoints());
  if (united.empty()) return result;

  size_t k = std::min(options_.k, united.size());
  // Solve on a columnar re-layout of the union so the sequential step runs
  // on the batched kernels.
  Dataset united_data(std::move(united));
  std::vector<size_t> picked =
      SolveSequential(options_.problem, united_data, *metric_, k);
  result.solution.reserve(picked.size());
  for (size_t idx : picked) {
    result.solution.push_back(united_data.point(idx));
  }
  result.diversity =
      EvaluateDiversity(options_.problem, result.solution, *metric_);
  return result;
}

size_t SlidingWindowDiversity::StoredPoints() const {
  size_t total = 0;
  for (const Block& b : blocks_) total += b.coreset.size();
  if (running_smm_) total += running_smm_->engine().StoredPoints();
  if (running_smm_ext_) total += running_smm_ext_->engine().StoredPoints();
  return total;
}

}  // namespace diverse
