// Minimal fork/exec subprocess support for the socket transport: spawn a
// worker connected by a Unix-domain socketpair, kill it, reap it. POSIX
// only (the only platform this repo targets); no shell is ever involved.

#ifndef DIVERSE_UTIL_SUBPROCESS_H_
#define DIVERSE_UTIL_SUBPROCESS_H_

#include <sys/types.h>

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace diverse {

/// One spawned child connected by a stream socket.
struct Subprocess {
  pid_t pid = -1;
  /// Parent end of the socketpair (close-on-exec). The child received the
  /// other end as the fd named in its argv.
  int fd = -1;
};

/// Forks and execs `binary` with `args` (argv[1..]), connected to the
/// parent by a SOCK_STREAM socketpair. The child's end is passed as fd 3
/// and "--fd=3" is appended to its argv; the parent's end comes back in
/// Subprocess::fd with FD_CLOEXEC set (workers must not inherit each
/// other's driver connections). kUnavailable on any syscall failure.
DIVERSE_MUST_USE StatusOr<Subprocess> SpawnWorker(
    const std::string& binary, const std::vector<std::string>& args);

/// SIGKILLs the child (if still running) and closes the parent fd. Safe to
/// call twice; reaping is WaitSubprocess's job.
void KillSubprocess(Subprocess* child);

/// Waits for the child to exit, up to `timeout_ms` (polling); SIGKILLs and
/// reaps it if the deadline passes. Closes the parent fd. Returns the
/// child's exit code, or -1 if it died by signal / was force-killed.
int WaitSubprocess(Subprocess* child, uint64_t timeout_ms);

/// Directory of the running executable (via /proc/self/exe), used to
/// locate sibling binaries like diverse_worker. Empty string on failure.
std::string ExecutableDir();

}  // namespace diverse

#endif  // DIVERSE_UTIL_SUBPROCESS_H_
