// Lightweight CHECK macros for invariant enforcement.
//
// The library does not use exceptions (per the project style rules); instead,
// precondition violations abort the process with a diagnostic. CHECK-style
// assertions are active in all build modes because the algorithms in this
// library depend on invariants (anticover property, phase invariants of the
// streaming doubling algorithm) whose silent violation would produce wrong
// answers rather than crashes.

#ifndef DIVERSE_UTIL_CHECK_H_
#define DIVERSE_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace diverse {
namespace internal_check {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr) {
  std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", file, line, expr);
  std::abort();
}

}  // namespace internal_check
}  // namespace diverse

/// Aborts the process if `cond` is false.
#define DIVERSE_CHECK(cond)                                              \
  do {                                                                   \
    if (!(cond)) {                                                       \
      ::diverse::internal_check::CheckFailed(__FILE__, __LINE__, #cond); \
    }                                                                    \
  } while (0)

/// Binary comparison checks; print both operands' expression text.
#define DIVERSE_CHECK_OP(a, op, b) DIVERSE_CHECK((a)op(b))
#define DIVERSE_CHECK_EQ(a, b) DIVERSE_CHECK_OP(a, ==, b)
#define DIVERSE_CHECK_NE(a, b) DIVERSE_CHECK_OP(a, !=, b)
#define DIVERSE_CHECK_LT(a, b) DIVERSE_CHECK_OP(a, <, b)
#define DIVERSE_CHECK_LE(a, b) DIVERSE_CHECK_OP(a, <=, b)
#define DIVERSE_CHECK_GT(a, b) DIVERSE_CHECK_OP(a, >, b)
#define DIVERSE_CHECK_GE(a, b) DIVERSE_CHECK_OP(a, >=, b)

#endif  // DIVERSE_UTIL_CHECK_H_
