#include "util/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <utility>

#include "util/check.h"

namespace diverse {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  DIVERSE_CHECK(!headers_.empty());
}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  DIVERSE_CHECK_EQ(cells.size(), headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      out << (c == 0 ? "| " : " ") << row[c]
          << std::string(widths[c] - row[c].size(), ' ') << " |";
    }
    out << "\n";
  };
  emit_row(headers_);
  for (size_t c = 0; c < headers_.size(); ++c) {
    out << (c == 0 ? "|" : "") << std::string(widths[c] + 2, '-') << "|";
  }
  out << "\n";
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

std::string TablePrinter::ToCsv() const {
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c) out << ",";
      out << row[c];
    }
    out << "\n";
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return out.str();
}

std::string TablePrinter::Fmt(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return buf;
}

std::string TablePrinter::Fmt(long long value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", value);
  return buf;
}

}  // namespace diverse
