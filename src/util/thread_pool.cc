#include "util/thread_pool.h"

#include <atomic>
#include <utility>

#include "util/check.h"

namespace diverse {

ThreadPool::ThreadPool(size_t num_threads) {
  DIVERSE_CHECK_GE(num_threads, 1u);
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    DIVERSE_CHECK(!shutting_down_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  // Dynamic scheduling over a shared counter: tasks in this library have
  // uneven cost (reducer partitions of different difficulty), so static
  // striping would leave threads idle.
  auto next = std::make_shared<std::atomic<size_t>>(0);
  size_t num_tasks = std::min(n, num_threads());
  for (size_t t = 0; t < num_tasks; ++t) {
    Submit([next, n, &fn] {
      for (size_t i = (*next)++; i < n; i = (*next)++) fn(i);
    });
  }
  Wait();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_available_.wait(
          lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) {
        // shutting_down_ and no work left.
        return;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace diverse
