#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <memory>
#include <utility>

#include "util/check.h"

namespace diverse {

ThreadPool::ThreadPool(size_t num_threads) {
  DIVERSE_CHECK_GE(num_threads, 1u);
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    DIVERSE_CHECK(!shutting_down_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

namespace {

// Per-call completion state so concurrent parallel loops on one pool only
// wait for their own tasks.
struct LoopState {
  std::atomic<size_t> next{0};
  std::atomic<size_t> done{0};
  size_t num_tasks = 0;
  std::mutex mu;
  std::condition_variable finished;
};

}  // namespace

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  // Dynamic scheduling over a shared counter: tasks in this library have
  // uneven cost (reducer partitions of different difficulty), so static
  // striping would leave threads idle.
  auto state = std::make_shared<LoopState>();
  state->num_tasks = std::min(n, num_threads());
  for (size_t t = 0; t < state->num_tasks; ++t) {
    Submit([state, n, &fn] {
      for (size_t i = state->next++; i < n; i = state->next++) fn(i);
      std::unique_lock<std::mutex> lock(state->mu);
      if (++state->done == state->num_tasks) state->finished.notify_all();
    });
  }
  std::unique_lock<std::mutex> lock(state->mu);
  state->finished.wait(lock,
                       [&] { return state->done == state->num_tasks; });
}

void ThreadPool::ParallelForRanges(
    size_t n, size_t grain, const std::function<void(size_t, size_t)>& fn) {
  if (n == 0) return;
  grain = std::max<size_t>(grain, 1);
  if (n <= grain || num_threads() == 1) {
    fn(0, n);
    return;
  }
  size_t num_ranges = (n + grain - 1) / grain;
  auto state = std::make_shared<LoopState>();
  state->num_tasks = std::min(num_ranges, num_threads());
  for (size_t t = 0; t < state->num_tasks; ++t) {
    Submit([state, n, grain, num_ranges, &fn] {
      for (size_t r = state->next++; r < num_ranges; r = state->next++) {
        size_t begin = r * grain;
        fn(begin, std::min(n, begin + grain));
      }
      std::unique_lock<std::mutex> lock(state->mu);
      if (++state->done == state->num_tasks) state->finished.notify_all();
    });
  }
  std::unique_lock<std::mutex> lock(state->mu);
  state->finished.wait(lock,
                       [&] { return state->done == state->num_tasks; });
}

namespace {

size_t DefaultGlobalThreads() {
  if (const char* env = std::getenv("DIVERSE_THREADS")) {
    long parsed = std::atol(env);
    if (parsed >= 1) return static_cast<size_t>(parsed);
  }
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<size_t>(hw);
}

std::mutex g_global_pool_mu;
std::unique_ptr<ThreadPool> g_global_pool;

}  // namespace

ThreadPool& GlobalThreadPool() {
  std::unique_lock<std::mutex> lock(g_global_pool_mu);
  if (!g_global_pool) {
    g_global_pool = std::make_unique<ThreadPool>(DefaultGlobalThreads());
  }
  return *g_global_pool;
}

void SetGlobalThreadPoolSize(size_t num_threads) {
  std::unique_lock<std::mutex> lock(g_global_pool_mu);
  g_global_pool = std::make_unique<ThreadPool>(num_threads);
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_available_.wait(
          lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) {
        // shutting_down_ and no work left.
        return;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace diverse
