#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <memory>
#include <utility>

#include "util/check.h"
#include "util/thread_annotations.h"

namespace diverse {

ThreadPool::ThreadPool(size_t num_threads) {
  DIVERSE_CHECK_GE(num_threads, 1u);
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(&mu_);
    shutting_down_ = true;
  }
  work_available_.NotifyAll();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    MutexLock lock(&mu_);
    DIVERSE_CHECK(!shutting_down_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_available_.NotifyOne();
}

void ThreadPool::Wait() {
  MutexLock lock(&mu_);
  while (in_flight_ != 0) all_done_.Wait(mu_);
}

namespace {

// Per-call completion state so concurrent parallel loops on one pool only
// wait for their own tasks.
struct LoopState {
  std::atomic<size_t> next{0};
  // Set once before any task is submitted, immutable afterwards.
  size_t num_tasks = 0;
  Mutex mu;
  CondVar finished;
  size_t done DIVERSE_GUARDED_BY(mu) = 0;
};

// The pool a worker thread belongs to (nullptr on external threads). Lets
// nested same-pool parallel loops run inline instead of blocking a worker
// on tasks only workers can execute.
thread_local ThreadPool* tl_worker_pool = nullptr;

// The pool whose arena this thread currently owns, if any. A nested
// same-pool loop from inside the owner's own range body must not touch
// arena_call_mu_ again (non-recursive); it runs inline instead.
thread_local ThreadPool* tl_arena_owner = nullptr;

}  // namespace

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (tl_worker_pool == this) {
    // Nested call from one of this pool's own workers: run inline.
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  // Dynamic scheduling over a shared counter: tasks in this library have
  // uneven cost (reducer partitions of different difficulty), so static
  // striping would leave threads idle.
  auto state = std::make_shared<LoopState>();
  state->num_tasks = std::min(n, num_threads());
  for (size_t t = 0; t < state->num_tasks; ++t) {
    Submit([state, n, &fn] {
      for (size_t i = state->next++; i < n; i = state->next++) fn(i);
      MutexLock lock(&state->mu);
      if (++state->done == state->num_tasks) state->finished.NotifyAll();
    });
  }
  MutexLock lock(&state->mu);
  while (state->done != state->num_tasks) state->finished.Wait(state->mu);
}

bool ThreadPool::ParallelForFallible(size_t n,
                                     const std::function<bool(size_t)>& fn) {
  if (n == 0) return true;
  if (tl_worker_pool == this) {
    // Nested call from one of this pool's own workers: run inline, stopping
    // at the first failure.
    for (size_t i = 0; i < n; ++i) {
      if (!fn(i)) return false;
    }
    return true;
  }
  auto state = std::make_shared<LoopState>();
  auto poisoned = std::make_shared<std::atomic<bool>>(false);
  state->num_tasks = std::min(n, num_threads());
  for (size_t t = 0; t < state->num_tasks; ++t) {
    Submit([state, poisoned, n, &fn] {
      // Check the poison flag at every claim: once any invocation fails,
      // the remaining indices are skipped and the loop tasks drain, so the
      // barrier below releases instead of waiting on work that no longer
      // matters.
      while (!poisoned->load(std::memory_order_acquire)) {
        size_t i = state->next++;
        if (i >= n) break;
        if (!fn(i)) poisoned->store(true, std::memory_order_release);
      }
      MutexLock lock(&state->mu);
      if (++state->done == state->num_tasks) state->finished.NotifyAll();
    });
  }
  {
    MutexLock lock(&state->mu);
    while (state->done != state->num_tasks) state->finished.Wait(state->mu);
  }
  return !poisoned->load(std::memory_order_acquire);
}

void ThreadPool::ParallelForRanges(
    size_t n, size_t grain, const std::function<void(size_t, size_t)>& fn) {
  if (n == 0) return;
  grain = std::max<size_t>(grain, 1);
  if (n <= grain || num_threads() == 1 || tl_worker_pool == this ||
      tl_arena_owner == this) {
    fn(0, n);
    return;
  }
  size_t num_ranges = (n + grain - 1) / grain;
  if (!arena_call_mu_.TryLock()) {
    // Another thread owns the arena (concurrent loops, e.g. batched kernels
    // issued from several MapReduce reducers): take the queued path.
    ParallelForRangesQueued(n, grain, num_ranges, fn);
    return;
  }
  // Save and restore rather than null on exit: with two ThreadPool
  // instances, a nested loop on pool B from inside pool A's range body must
  // not erase the record that this thread still owns A's arena — the
  // tl_arena_owner == this guard at the top of this function relies on it
  // to run A-nested loops inline instead of re-locking a mutex this thread
  // already holds.
  ThreadPool* prev_arena_owner = tl_arena_owner;
  tl_arena_owner = this;
  // Publish the loop and wake the workers.
  {
    MutexLock lock(&mu_);
    arena_fn_ = &fn;
    arena_n_ = n;
    arena_grain_ = grain;
    arena_num_ranges_ = num_ranges;
    arena_next_.store(0, std::memory_order_relaxed);
    arena_open_ = true;
  }
  work_available_.NotifyAll();
  // The caller claims ranges alongside the workers: progress is guaranteed
  // even if every worker is busy elsewhere.
  for (size_t r = arena_next_.fetch_add(1, std::memory_order_relaxed);
       r < num_ranges;
       r = arena_next_.fetch_add(1, std::memory_order_relaxed)) {
    size_t begin = r * grain;
    fn(begin, std::min(n, begin + grain));
  }
  {
    MutexLock lock(&mu_);
    arena_open_ = false;  // no new entrants
    while (arena_workers_inside_ != 0) arena_done_.Wait(mu_);
    arena_fn_ = nullptr;
  }
  tl_arena_owner = prev_arena_owner;
  arena_call_mu_.Unlock();
}

void ThreadPool::ParallelForRangesQueued(
    size_t n, size_t grain, size_t num_ranges,
    const std::function<void(size_t, size_t)>& fn) {
  auto state = std::make_shared<LoopState>();
  state->num_tasks = std::min(num_ranges, num_threads());
  for (size_t t = 0; t < state->num_tasks; ++t) {
    Submit([state, n, grain, num_ranges, &fn] {
      for (size_t r = state->next++; r < num_ranges; r = state->next++) {
        size_t begin = r * grain;
        fn(begin, std::min(n, begin + grain));
      }
      MutexLock lock(&state->mu);
      if (++state->done == state->num_tasks) state->finished.NotifyAll();
    });
  }
  MutexLock lock(&state->mu);
  while (state->done != state->num_tasks) state->finished.Wait(state->mu);
}

namespace {

size_t DefaultGlobalThreads() {
  // Read once at pool creation, before any worker exists — safe despite
  // getenv's global environ access.
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  if (const char* env = std::getenv("DIVERSE_THREADS")) {
    long parsed = std::atol(env);
    if (parsed >= 1) return static_cast<size_t>(parsed);
  }
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<size_t>(hw);
}

Mutex g_global_pool_mu;
std::unique_ptr<ThreadPool> g_global_pool
    DIVERSE_GUARDED_BY(g_global_pool_mu);

}  // namespace

ThreadPool& GlobalThreadPool() {
  MutexLock lock(&g_global_pool_mu);
  if (!g_global_pool) {
    g_global_pool = std::make_unique<ThreadPool>(DefaultGlobalThreads());
  }
  return *g_global_pool;
}

void SetGlobalThreadPoolSize(size_t num_threads) {
  MutexLock lock(&g_global_pool_mu);
  g_global_pool = std::make_unique<ThreadPool>(num_threads);
}

void ThreadPool::WorkerLoop() {
  tl_worker_pool = this;
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(&mu_);
      while (!(shutting_down_ || !queue_.empty() || ArenaHasWork())) {
        work_available_.Wait(mu_);
      }
      if (ArenaHasWork()) {
        // Join the open range loop: claim ranges from the shared cursor
        // until it is exhausted, then report back to the arena owner.
        ++arena_workers_inside_;
        const std::function<void(size_t, size_t)>* fn = arena_fn_;
        size_t n = arena_n_;
        size_t grain = arena_grain_;
        size_t num_ranges = arena_num_ranges_;
        lock.Unlock();
        for (size_t r = arena_next_.fetch_add(1, std::memory_order_relaxed);
             r < num_ranges;
             r = arena_next_.fetch_add(1, std::memory_order_relaxed)) {
          size_t begin = r * grain;
          (*fn)(begin, std::min(n, begin + grain));
        }
        lock.Lock();
        if (--arena_workers_inside_ == 0) arena_done_.NotifyAll();
        continue;
      }
      if (queue_.empty()) {
        // shutting_down_ and no work left.
        return;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      MutexLock lock(&mu_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.NotifyAll();
    }
  }
}

}  // namespace diverse
