#include "util/rng.h"

#include <cmath>

#include "util/check.h"

namespace diverse {

namespace {

inline uint64_t SplitMix64(uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (uint64_t& s : s_) s = SplitMix64(sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high bits -> uniform double in [0,1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  DIVERSE_CHECK_GT(bound, 0u);
  // Lemire's method: multiply-shift with rejection of the biased low range.
  uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t l = static_cast<uint64_t>(m);
  if (l < bound) {
    uint64_t threshold = -bound % bound;
    while (l < threshold) {
      x = Next();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::NextInRange(int64_t lo, int64_t hi) {
  DIVERSE_CHECK_LE(lo, hi);
  uint64_t span = static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo) + 1;
  // The full int64 range has 2^64 values: `span` wraps to 0, which is not a
  // valid NextBounded bound. Every 64-bit draw is already uniform over that
  // range, so reinterpret one directly.
  if (span == 0) return static_cast<int64_t>(Next());
  // Add in unsigned arithmetic: for spans wider than int64 the bounded draw
  // itself exceeds INT64_MAX, so the signed addition would overflow; the
  // unsigned wraparound yields exactly the intended two's-complement value.
  return static_cast<int64_t>(static_cast<uint64_t>(lo) + NextBounded(span));
}

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u, v, s;
  do {
    u = 2.0 * NextDouble() - 1.0;
    v = 2.0 * NextDouble() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  double mul = std::sqrt(-2.0 * std::log(s) / s);
  cached_gaussian_ = v * mul;
  has_cached_gaussian_ = true;
  return u * mul;
}

Rng Rng::Split() {
  // xoshiro256** jump polynomial: advances a copy by 2^128 steps, leaving
  // this generator on a disjoint subsequence.
  static constexpr uint64_t kJump[] = {0x180EC6D33CFD0ABAULL,
                                       0xD5A61266F0C9392CULL,
                                       0xA9582618E03FC9AAULL,
                                       0x39ABDC4529B1661CULL};
  Rng other = *this;
  uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  for (uint64_t jump : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (jump & (1ULL << b)) {
        s0 ^= s_[0];
        s1 ^= s_[1];
        s2 ^= s_[2];
        s3 ^= s_[3];
      }
      Next();
    }
  }
  s_[0] = s0;
  s_[1] = s1;
  s_[2] = s2;
  s_[3] = s3;
  // `other` retains the pre-jump state; `this` continues from the jumped
  // state, so the two streams do not overlap for 2^128 draws.
  return other;
}

}  // namespace diverse
