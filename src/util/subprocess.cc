#include "util/subprocess.h"

#include <fcntl.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

namespace diverse {

namespace {

// The fd number the child's socket is dup2'ed onto before exec. Above
// stdio, below anything the runtime opens later.
constexpr int kChildFd = 3;

}  // namespace

StatusOr<Subprocess> SpawnWorker(const std::string& binary,
                                 const std::vector<std::string>& args) {
  int fds[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) {
    return UnavailableError(std::string("socketpair failed: ") +
                            std::strerror(errno));
  }
  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(fds[0]);
    ::close(fds[1]);
    return UnavailableError(std::string("fork failed: ") +
                            std::strerror(errno));
  }
  if (pid == 0) {
    // Child: keep only its end of the pair, pinned at kChildFd.
    ::close(fds[0]);
    if (fds[1] != kChildFd) {
      if (::dup2(fds[1], kChildFd) < 0) ::_exit(127);
      ::close(fds[1]);
    }
    std::vector<char*> argv;
    argv.reserve(args.size() + 3);
    argv.push_back(const_cast<char*>(binary.c_str()));
    for (const std::string& a : args) {
      argv.push_back(const_cast<char*>(a.c_str()));
    }
    std::string fd_arg = "--fd=" + std::to_string(kChildFd);
    argv.push_back(const_cast<char*>(fd_arg.c_str()));
    argv.push_back(nullptr);
    ::execv(binary.c_str(), argv.data());
    ::_exit(127);  // exec failed; the parent sees EOF and a 127 exit
  }
  // Parent: close the child's end, mark ours close-on-exec so sibling
  // workers never inherit this connection (an inherited fd would keep the
  // stream open after we close it, masking worker death).
  ::close(fds[1]);
  int flags = ::fcntl(fds[0], F_GETFD);
  if (flags >= 0) (void)::fcntl(fds[0], F_SETFD, flags | FD_CLOEXEC);
  Subprocess child;
  child.pid = pid;
  child.fd = fds[0];
  return child;
}

void KillSubprocess(Subprocess* child) {
  if (child->pid > 0) (void)::kill(child->pid, SIGKILL);
  if (child->fd >= 0) {
    ::close(child->fd);
    child->fd = -1;
  }
}

int WaitSubprocess(Subprocess* child, uint64_t timeout_ms) {
  if (child->fd >= 0) {
    ::close(child->fd);
    child->fd = -1;
  }
  if (child->pid <= 0) return -1;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  int status = 0;
  for (;;) {
    const pid_t r = ::waitpid(child->pid, &status, WNOHANG);
    if (r == child->pid) break;
    if (r < 0 && errno != EINTR) {
      child->pid = -1;
      return -1;
    }
    if (std::chrono::steady_clock::now() >= deadline) {
      (void)::kill(child->pid, SIGKILL);
      if (::waitpid(child->pid, &status, 0) != child->pid) {
        child->pid = -1;
        return -1;
      }
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  child->pid = -1;
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

std::string ExecutableDir() {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n <= 0) return "";
  buf[n] = '\0';
  std::string path(buf);
  const size_t slash = path.rfind('/');
  return slash == std::string::npos ? "" : path.substr(0, slash);
}

}  // namespace diverse
