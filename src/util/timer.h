// Wall-clock timing helpers used by the benchmark harnesses and the
// MapReduce/Streaming substrates to report running times and throughput.

#ifndef DIVERSE_UTIL_TIMER_H_
#define DIVERSE_UTIL_TIMER_H_

#include <chrono>

namespace diverse {

/// A simple monotonic stopwatch. Starts running on construction.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Reset().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last Reset().
  double Millis() const { return Seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace diverse

#endif  // DIVERSE_UTIL_TIMER_H_
