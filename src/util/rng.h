// Deterministic pseudo-random number generation for data generators,
// randomized algorithms, and tests.
//
// We ship our own generator (xoshiro256**) instead of std::mt19937 so that
// every stream of random numbers used in experiments is reproducible across
// standard-library implementations, and so that cheap splittable per-thread
// streams are available for the MapReduce simulator.

#ifndef DIVERSE_UTIL_RNG_H_
#define DIVERSE_UTIL_RNG_H_

#include <cstdint>
#include <limits>

namespace diverse {

/// xoshiro256** 1.0 by Blackman & Vigna (public domain reference
/// implementation), wrapped as a C++ UniformRandomBitGenerator so it can be
/// used with <random> distributions when convenient.
class Rng {
 public:
  using result_type = uint64_t;

  /// Seeds the generator from a single 64-bit seed via splitmix64, which
  /// guarantees a well-mixed internal state even for small seeds.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  Rng(const Rng&) = default;
  Rng& operator=(const Rng&) = default;

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<uint64_t>::max();
  }

  /// Returns the next 64 random bits.
  uint64_t operator()() { return Next(); }

  /// Returns the next 64 random bits.
  uint64_t Next();

  /// Returns a double uniform in [0, 1).
  double NextDouble();

  /// Returns an integer uniform in [0, bound). `bound` must be positive.
  /// Uses Lemire's multiply-shift rejection method (unbiased).
  uint64_t NextBounded(uint64_t bound);

  /// Returns an integer uniform in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInRange(int64_t lo, int64_t hi);

  /// Returns a standard normal variate (Marsaglia polar method).
  double NextGaussian();

  /// Returns a new generator whose stream is independent of this one
  /// (implemented with the xoshiro jump function). Useful for handing one
  /// stream to each simulated reducer.
  Rng Split();

 private:
  uint64_t s_[4];
  // Cached second output of the polar method; NaN when absent.
  double cached_gaussian_;
  bool has_cached_gaussian_ = false;
};

}  // namespace diverse

#endif  // DIVERSE_UTIL_RNG_H_
