// Non-exception error propagation: Status and StatusOr<T>.
//
// The library bans exceptions (see util/check.h); until now the only failure
// channels were DIVERSE_CHECK-abort and bool/optional returns with no
// diagnosis. Status carries a machine-readable code plus a human-readable
// message through the fallible entry points (data loaders, input validation
// at the Solve() boundary, and the fault-tolerant MapReduce executor), so a
// reducer crash or a corrupt input file degrades into a reportable error
// instead of a process abort. CHECK remains the right tool for internal
// invariants whose violation means the library itself is wrong; Status is
// for failures the *environment* can cause: bad files, bad arguments, dead
// or lying reducer tasks.

#ifndef DIVERSE_UTIL_STATUS_H_
#define DIVERSE_UTIL_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "util/check.h"

/// Marks a function whose return value encodes success/failure (Try*
/// loaders, fallible solves, ParallelForFallible) so discarding it is a
/// compile error under -Werror=unused-result (enforced in the main build
/// and pinned by the tests/static_analysis compile-fail gate). Status and
/// StatusOr are additionally nodiscard at class level, so any function
/// returning them by value is covered even without this macro; use it for
/// bool/struct-returning fallible APIs and as explicit documentation.
#define DIVERSE_MUST_USE [[nodiscard]]

namespace diverse {

/// Canonical error space (a deliberate subset of the absl/gRPC codes; only
/// codes the library actually produces are listed).
enum class StatusCode : uint8_t {
  kOk = 0,
  kInvalidArgument,    // caller-supplied value is malformed (bad k, NaN rows)
  kNotFound,           // file or resource missing
  kDataLoss,           // truncated/corrupt bytes (files, partitions)
  kDeadlineExceeded,   // task exceeded its wall-clock budget
  kResourceExhausted,  // retry budget or memory budget spent
  kFailedPrecondition, // operation undefined in the current state
  kAborted,            // task crashed / was killed (fault injection)
  kUnavailable,        // transient infrastructure failure, retryable
  kInternal,           // invariant violated across a fallible boundary
};

/// Upper-snake name, e.g. "INVALID_ARGUMENT".
inline const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kNotFound: return "NOT_FOUND";
    case StatusCode::kDataLoss: return "DATA_LOSS";
    case StatusCode::kDeadlineExceeded: return "DEADLINE_EXCEEDED";
    case StatusCode::kResourceExhausted: return "RESOURCE_EXHAUSTED";
    case StatusCode::kFailedPrecondition: return "FAILED_PRECONDITION";
    case StatusCode::kAborted: return "ABORTED";
    case StatusCode::kUnavailable: return "UNAVAILABLE";
    case StatusCode::kInternal: return "INTERNAL";
  }
  return "UNKNOWN";
}

/// A success-or-error value. Cheap to copy on success (no allocation: the
/// message is empty), movable, and annotated nodiscard so a dropped error
/// is a compile-time warning.
class [[nodiscard]] Status {
 public:
  /// OK.
  Status() = default;

  /// An error. `code` must not be kOk (use the default constructor for OK).
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {
    DIVERSE_CHECK(code_ != StatusCode::kOk);
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "CODE: message" (just "OK" when ok).
  std::string ToString() const {
    if (ok()) return "OK";
    return std::string(StatusCodeName(code_)) + ": " + message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

inline Status OkStatus() { return Status(); }
inline Status InvalidArgumentError(std::string m) {
  return Status(StatusCode::kInvalidArgument, std::move(m));
}
inline Status NotFoundError(std::string m) {
  return Status(StatusCode::kNotFound, std::move(m));
}
inline Status DataLossError(std::string m) {
  return Status(StatusCode::kDataLoss, std::move(m));
}
inline Status DeadlineExceededError(std::string m) {
  return Status(StatusCode::kDeadlineExceeded, std::move(m));
}
inline Status ResourceExhaustedError(std::string m) {
  return Status(StatusCode::kResourceExhausted, std::move(m));
}
inline Status FailedPreconditionError(std::string m) {
  return Status(StatusCode::kFailedPrecondition, std::move(m));
}
inline Status AbortedError(std::string m) {
  return Status(StatusCode::kAborted, std::move(m));
}
inline Status UnavailableError(std::string m) {
  return Status(StatusCode::kUnavailable, std::move(m));
}
inline Status InternalError(std::string m) {
  return Status(StatusCode::kInternal, std::move(m));
}

/// A value or the error explaining its absence. Accessing value() on an
/// error CHECK-aborts (the caller must test ok() first — same contract as
/// dereferencing an empty optional, but with the error retained for
/// reporting).
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  /// From an error. `status` must not be OK (an OK status with no value is
  /// a contract violation).
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT(implicit)
    DIVERSE_CHECK(!status_.ok());
  }

  /// From a value.
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT(implicit)

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  T& value() & {
    DIVERSE_CHECK(ok());
    return *value_;
  }
  const T& value() const& {
    DIVERSE_CHECK(ok());
    return *value_;
  }
  T&& value() && {
    DIVERSE_CHECK(ok());
    return *std::move(value_);
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T&& operator*() && { return std::move(*this).value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  Status status_;  // OK iff value_ holds a value
  std::optional<T> value_;
};

}  // namespace diverse

/// Propagates a non-OK Status to the caller.
#define DIVERSE_RETURN_IF_ERROR(expr)            \
  do {                                           \
    ::diverse::Status status_macro_tmp = (expr); \
    if (!status_macro_tmp.ok()) return status_macro_tmp; \
  } while (0)

#define DIVERSE_STATUS_CONCAT_INNER(a, b) a##b
#define DIVERSE_STATUS_CONCAT(a, b) DIVERSE_STATUS_CONCAT_INNER(a, b)

/// Unwraps a StatusOr expression into `lhs` or propagates its error:
///   DIVERSE_ASSIGN_OR_RETURN(PointSet points, TryLoadPointsText(path));
/// `lhs` may declare a new variable or assign to an existing one. This (or
/// an explicit ok() check) is the only sanctioned route to a StatusOr's
/// value — tools/lint.py flags naked .value() calls without a guard.
#define DIVERSE_ASSIGN_OR_RETURN(lhs, expr)                            \
  DIVERSE_ASSIGN_OR_RETURN_IMPL(                                       \
      DIVERSE_STATUS_CONCAT(statusor_macro_tmp_, __LINE__), lhs, expr)

#define DIVERSE_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                  \
  if (!tmp.ok()) return tmp.status();                 \
  lhs = std::move(tmp).value()

#endif  // DIVERSE_UTIL_STATUS_H_
