// Fixed-size thread pool used by the MapReduce simulator to execute reducer
// tasks in parallel, and by benches to parallelize independent runs.

#ifndef DIVERSE_UTIL_THREAD_POOL_H_
#define DIVERSE_UTIL_THREAD_POOL_H_

#include <atomic>
#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "util/status.h"
#include "util/thread_annotations.h"

namespace diverse {

/// A minimal work-queue thread pool.
///
/// Tasks are `std::function<void()>`; exceptions must not escape tasks (the
/// library is exception-free). Destruction waits for all submitted tasks to
/// finish.
///
/// Locking contract (statically checked under -Wthread-safety): `mu_`
/// guards the task queue, the in-flight count, and the arena descriptor;
/// `arena_call_mu_` is a serialization token admitting one range-loop owner
/// at a time; `arena_next_` is the only lock-free shared cursor. Entry
/// points are non-reentrant on `mu_` (DIVERSE_EXCLUDES) — nested loops from
/// worker threads are detected and run inline before any lock is touched.
class ThreadPool {
 public:
  /// Creates a pool with `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool();

  /// Enqueues a task for execution.
  void Submit(std::function<void()> task) DIVERSE_EXCLUDES(mu_);

  /// Blocks until every submitted task has completed.
  void Wait() DIVERSE_EXCLUDES(mu_);

  /// Number of worker threads.
  size_t num_threads() const { return workers_.size(); }

  /// Convenience: runs `fn(i)` for i in [0, n) across the pool and waits.
  /// `fn` must be safe to invoke concurrently for distinct indices.
  /// Completion is tracked per call, so concurrent ParallelFor calls from
  /// different threads (e.g. batched kernels running inside MapReduce
  /// reducers) do not wait on each other's tasks.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn)
      DIVERSE_EXCLUDES(mu_);

  /// ParallelFor with mid-round abort: `fn(i)` returning false poisons the
  /// round — no further indices are claimed (invocations already running
  /// finish normally) and the call returns false; true when every index ran
  /// and succeeded. The barrier always waits for every *started* invocation,
  /// so state captured by `fn` stays valid, and a poisoned round never
  /// leaves waiters blocked: the loop tasks all observe the poison flag on
  /// their next claim and drain. Which indices are skipped after a failure
  /// is scheduling-dependent; callers needing determinism must treat a
  /// false return as "retry or abort the whole round" (as the MapReduce
  /// executor does), never as a partial result — which is why discarding
  /// the verdict is a compile error.
  DIVERSE_MUST_USE bool ParallelForFallible(
      size_t n, const std::function<bool(size_t)>& fn) DIVERSE_EXCLUDES(mu_);

  /// Runs `fn(begin, end)` over disjoint ranges covering [0, n), each of
  /// roughly `grain` indices, across the pool, and waits. Runs inline on the
  /// calling thread when the work is too small to amortize dispatch
  /// (n <= grain), the pool has a single worker, or the caller *is* a worker
  /// of this pool (nested same-pool loops would otherwise block a worker on
  /// work only workers can run). Range boundaries depend only on (n, grain)
  /// — never on scheduling — so deterministic per-range reductions combine
  /// identically at any thread count.
  ///
  /// Dispatch goes through a persistent task arena: the caller publishes the
  /// loop descriptor, wakes the workers, and claims ranges itself alongside
  /// them from one shared atomic cursor — no per-call task allocation, no
  /// queue churn, and progress is guaranteed even if every worker is busy
  /// (the caller drains the loop alone in the worst case). When another
  /// thread already occupies the arena, the call falls back to the queued
  /// task path.
  void ParallelForRanges(size_t n, size_t grain,
                         const std::function<void(size_t, size_t)>& fn)
      DIVERSE_EXCLUDES(mu_, arena_call_mu_);

 private:
  void WorkerLoop() DIVERSE_EXCLUDES(mu_);
  void ParallelForRangesQueued(size_t n, size_t grain, size_t num_ranges,
                               const std::function<void(size_t, size_t)>& fn)
      DIVERSE_EXCLUDES(mu_);

  /// True when the published range loop still has unclaimed ranges.
  bool ArenaHasWork() const DIVERSE_REQUIRES(mu_) {
    return arena_open_ &&
           arena_next_.load(std::memory_order_relaxed) < arena_num_ranges_;
  }

  std::vector<std::thread> workers_;

  Mutex mu_;
  CondVar work_available_;
  CondVar all_done_;
  std::deque<std::function<void()>> queue_ DIVERSE_GUARDED_BY(mu_);
  size_t in_flight_ DIVERSE_GUARDED_BY(mu_) = 0;  // queued + running tasks
  bool shutting_down_ DIVERSE_GUARDED_BY(mu_) = false;

  // Persistent range-loop arena (one loop at a time). The descriptor fields
  // are published under mu_ by the arena owner and read under mu_ by
  // joining workers (which then run on copies); `arena_next_` is the shared
  // range cursor, intentionally lock-free.
  Mutex arena_call_mu_;  // serializes arena owners; guards no data
  const std::function<void(size_t, size_t)>* arena_fn_
      DIVERSE_GUARDED_BY(mu_) = nullptr;
  size_t arena_n_ DIVERSE_GUARDED_BY(mu_) = 0;
  size_t arena_grain_ DIVERSE_GUARDED_BY(mu_) = 0;
  size_t arena_num_ranges_ DIVERSE_GUARDED_BY(mu_) = 0;
  std::atomic<size_t> arena_next_{0};
  size_t arena_workers_inside_ DIVERSE_GUARDED_BY(mu_) = 0;
  bool arena_open_ DIVERSE_GUARDED_BY(mu_) = false;
  CondVar arena_done_;
};

/// Process-wide pool used by the batched distance kernels (core/metric.h).
/// Lazily created on first use with `DIVERSE_THREADS` workers if that
/// environment variable is set, otherwise std::thread::hardware_concurrency.
/// Distinct from any MapReduce simulator pool, so reducers can issue batched
/// kernels without self-deadlock.
ThreadPool& GlobalThreadPool();

/// Replaces the global pool with one of `num_threads` workers. Intended for
/// benches and tests that compare thread counts; must not race with
/// concurrent GlobalThreadPool() users.
void SetGlobalThreadPoolSize(size_t num_threads);

}  // namespace diverse

#endif  // DIVERSE_UTIL_THREAD_POOL_H_
