// Streaming statistics accumulator used by benchmark harnesses to report
// mean/min/max/stddev of repeated runs (the paper averages >= 10 runs).

#ifndef DIVERSE_UTIL_STATS_H_
#define DIVERSE_UTIL_STATS_H_

#include <cstddef>

namespace diverse {

/// Accumulates scalar samples with Welford's online algorithm, which is
/// numerically stable for long runs.
class RunningStats {
 public:
  RunningStats() = default;

  /// Adds one sample.
  void Add(double x);

  /// Number of samples added.
  size_t count() const { return count_; }

  /// Mean of the samples (0 if empty).
  double Mean() const { return count_ ? mean_ : 0.0; }

  /// Unbiased sample variance (0 if fewer than two samples).
  double Variance() const;

  /// Sample standard deviation.
  double StdDev() const;

  /// Smallest sample seen (0 if empty).
  double Min() const { return count_ ? min_ : 0.0; }

  /// Largest sample seen (0 if empty).
  double Max() const { return count_ ? max_ : 0.0; }

  /// Merges another accumulator into this one (parallel reduction).
  void Merge(const RunningStats& other);

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace diverse

#endif  // DIVERSE_UTIL_STATS_H_
