// Plain-text table printer used by the benchmark harnesses to emit the rows
// and series of each paper table/figure in a uniform, diffable format.

#ifndef DIVERSE_UTIL_TABLE_H_
#define DIVERSE_UTIL_TABLE_H_

#include <string>
#include <vector>

namespace diverse {

/// Accumulates rows of string cells and renders them as an aligned,
/// pipe-separated table. Also supports CSV output so bench results can be fed
/// to plotting scripts.
class TablePrinter {
 public:
  /// Creates a printer with the given column headers.
  explicit TablePrinter(std::vector<std::string> headers);

  /// Appends one row; must have exactly as many cells as there are headers.
  void AddRow(std::vector<std::string> cells);

  /// Renders an aligned text table (headers, separator, rows).
  std::string ToString() const;

  /// Renders comma-separated values (headers then rows).
  std::string ToCsv() const;

  /// Formats a double with `digits` significant decimal places.
  static std::string Fmt(double value, int digits = 3);

  /// Formats an integer.
  static std::string Fmt(long long value);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace diverse

#endif  // DIVERSE_UTIL_TABLE_H_
