#include "util/stats.h"

#include <algorithm>
#include <cmath>

namespace diverse {

void RunningStats::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::Variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::StdDev() const { return std::sqrt(Variance()); }

void RunningStats::Merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  size_t n = count_ + other.count_;
  double delta = other.mean_ - mean_;
  double mean =
      mean_ + delta * static_cast<double>(other.count_) / static_cast<double>(n);
  m2_ += other.m2_ + delta * delta * static_cast<double>(count_) *
                         static_cast<double>(other.count_) /
                         static_cast<double>(n);
  mean_ = mean;
  count_ = n;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

}  // namespace diverse
