// Clang thread-safety capability annotations + an annotated mutex stack.
//
// The locking contracts of the concurrent subsystems (ThreadPool's task
// arena, the fallible MapReduce round state, DatasetScratchPool, the global
// pool/toggle singletons) are declared with Clang's thread-safety attributes
// so `-Wthread-safety -Werror` proves them at compile time — the same
// certified-at-the-source philosophy the screening tiers apply to numerics.
// Under compilers without the analysis (g++) every macro expands to nothing
// and the wrappers below compile to exactly std::mutex /
// std::condition_variable code.
//
// Conventions (enforced by the `analyze` CI job, see README "Static
// analysis & concurrency contracts"):
//   * Shared mutable state is a member annotated DIVERSE_GUARDED_BY(mu_).
//   * Internal helpers that assume the lock are DIVERSE_REQUIRES(mu_)
//     and take no lock themselves.
//   * Public entry points that take the lock are DIVERSE_EXCLUDES(mu_)
//     (documents non-reentrancy; the analysis rejects self-deadlock).
//   * Condition waits are explicit `while (!cond) cv.Wait(mu);` loops —
//     never predicate lambdas, which the analysis cannot see into.
//   * Escape hatches need a justification comment on the same line:
//     `DIVERSE_NO_THREAD_SAFETY_ANALYSIS  // why the analysis is wrong`.

#ifndef DIVERSE_UTIL_THREAD_ANNOTATIONS_H_
#define DIVERSE_UTIL_THREAD_ANNOTATIONS_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

#if defined(__clang__)
#define DIVERSE_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define DIVERSE_THREAD_ANNOTATION(x)  // no-op outside clang
#endif

/// Type attribute: this class is a lockable capability ("mutex").
#define DIVERSE_CAPABILITY(x) DIVERSE_THREAD_ANNOTATION(capability(x))

/// Type attribute: RAII object that acquires in its constructor and
/// releases in its destructor.
#define DIVERSE_SCOPED_CAPABILITY DIVERSE_THREAD_ANNOTATION(scoped_lockable)

/// Data member readable/writable only while holding the capability.
#define DIVERSE_GUARDED_BY(x) DIVERSE_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member whose *pointee* is guarded by the capability.
#define DIVERSE_PT_GUARDED_BY(x) DIVERSE_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function requires the capability held on entry (and does not release it).
#define DIVERSE_REQUIRES(...) \
  DIVERSE_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function acquires the capability (must not be held on entry).
#define DIVERSE_ACQUIRE(...) \
  DIVERSE_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function attempts acquisition; holds it iff the return value equals the
/// first macro argument.
#define DIVERSE_TRY_ACQUIRE(...) \
  DIVERSE_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Function releases the capability (must be held on entry).
#define DIVERSE_RELEASE(...) \
  DIVERSE_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function must NOT be called with the capability held (deadlock guard for
/// non-reentrant entry points).
#define DIVERSE_EXCLUDES(...) \
  DIVERSE_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Function returns a reference to the named capability.
#define DIVERSE_RETURN_CAPABILITY(x) \
  DIVERSE_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: body not analyzed. Every use carries a same-line
/// justification comment (checked by tools/lint.py).
#define DIVERSE_NO_THREAD_SAFETY_ANALYSIS \
  DIVERSE_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace diverse {

/// std::mutex annotated as a capability so the analysis can track it.
/// Same size and cost as std::mutex; the annotations vanish under g++.
class DIVERSE_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() DIVERSE_ACQUIRE() { mu_.lock(); }
  void Unlock() DIVERSE_RELEASE() { mu_.unlock(); }
  bool TryLock() DIVERSE_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// Scoped lock with explicit Unlock/Lock for the unlock-work-relock pattern
/// (worker loops that drop the lock around user code). The destructor
/// releases only if currently held; the analysis tracks the manual
/// transitions.
class DIVERSE_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) DIVERSE_ACQUIRE(mu) : mu_(mu), held_(true) {
    mu_->Lock();
  }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// Temporarily releases the mutex (e.g. to run user code).
  void Unlock() DIVERSE_RELEASE() {
    held_ = false;
    mu_->Unlock();
  }

  /// Re-acquires after Unlock().
  void Lock() DIVERSE_ACQUIRE() {
    mu_->Lock();
    held_ = true;
  }

  ~MutexLock() DIVERSE_RELEASE() {
    if (held_) mu_->Unlock();
  }

 private:
  Mutex* mu_;
  bool held_;
};

/// std::condition_variable over Mutex. Waits REQUIRE the mutex so an
/// unlocked wait is a compile error under the analysis. No predicate
/// overloads on purpose: the analysis cannot see into a predicate lambda,
/// so waits are written as explicit `while (!cond) cv.Wait(mu);` loops with
/// the condition evaluated in the locked scope.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex& mu) DIVERSE_REQUIRES(mu) {
    // Adopt the already-held native mutex so the native condvar (no
    // condition_variable_any overhead) can unlock/relock it, then release
    // the adoption bookkeeping — ownership stays with the caller's scope.
    std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
    cv_.wait(native);
    native.release();
  }

  template <typename Clock, typename Duration>
  void WaitUntil(Mutex& mu,
                 const std::chrono::time_point<Clock, Duration>& deadline)
      DIVERSE_REQUIRES(mu) {
    std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
    cv_.wait_until(native, deadline);
    native.release();
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace diverse

#endif  // DIVERSE_UTIL_THREAD_ANNOTATIONS_H_
