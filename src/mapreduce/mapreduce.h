// A small in-process MapReduce simulator.
//
// The paper's MR model (Karloff et al. / Pietracaprina et al.): a round
// applies a reducer function independently to each part of a partitioned
// multiset, under a local memory budget M_L per reducer and a total budget
// M_T. We replace the distributed transport of Spark with a thread pool and
// keep everything else observable: per-round wall time, per-reducer input /
// output sizes, and the maximum local memory actually touched, so benches
// can report the quantities Theorems 6-10 bound.

#ifndef DIVERSE_MAPREDUCE_MAPREDUCE_H_
#define DIVERSE_MAPREDUCE_MAPREDUCE_H_

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "util/thread_pool.h"

namespace diverse {

/// Observability record for one simulated round.
struct RoundStats {
  std::string name;
  size_t num_reducers = 0;
  double wall_seconds = 0.0;
  /// Per-reducer input sizes in points, as reported by the driver.
  std::vector<size_t> input_points;
  /// Per-reducer output sizes in points, as reported by the driver.
  std::vector<size_t> output_points;

  /// Largest reducer input — the M_L this round actually required.
  size_t MaxInputPoints() const;
  /// Sum of reducer outputs — the shuffle volume to the next round.
  size_t TotalOutputPoints() const;
};

/// Executes rounds of reducer tasks on a fixed worker pool and accumulates
/// RoundStats. `num_workers` models the number of physical processors (the
/// "parallelism" axis of Figures 4 and 5); the number of reducers per round
/// is chosen by the caller and may exceed it, in which case reducers queue,
/// exactly like Spark tasks on a smaller cluster.
class MapReduceSimulator {
 public:
  explicit MapReduceSimulator(size_t num_workers);

  /// Runs `reducer(i)` for every i in [0, num_reducers), in parallel across
  /// the worker pool, and records timing. The reducer must fill in its
  /// input/output sizes through the returned stats object *before* the next
  /// round if it wants them recorded; more simply, use the overload below.
  void RunRound(const std::string& name, size_t num_reducers,
                const std::function<void(size_t)>& reducer);

  /// As above, but the driver also supplies per-reducer size reporters:
  /// sizes are recorded into the round's stats after the barrier.
  void RunRoundWithSizes(
      const std::string& name, size_t num_reducers,
      const std::function<void(size_t)>& reducer,
      const std::function<size_t(size_t)>& input_points_of,
      const std::function<size_t(size_t)>& output_points_of);

  /// Stats of every round run so far, in order.
  const std::vector<RoundStats>& rounds() const { return rounds_; }

  /// Number of rounds executed.
  size_t num_rounds() const { return rounds_.size(); }

  size_t num_workers() const { return pool_.num_threads(); }

 private:
  ThreadPool pool_;
  std::vector<RoundStats> rounds_;
};

}  // namespace diverse

#endif  // DIVERSE_MAPREDUCE_MAPREDUCE_H_
