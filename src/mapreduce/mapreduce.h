// A small in-process MapReduce simulator with a fault-tolerant executor.
//
// The paper's MR model (Karloff et al. / Pietracaprina et al.): a round
// applies a reducer function independently to each part of a partitioned
// multiset, under a local memory budget M_L per reducer and a total budget
// M_T. We replace the distributed transport of Spark with a thread pool and
// keep everything else observable: per-round wall time, per-reducer input /
// output sizes, and the maximum local memory actually touched, so benches
// can report the quantities Theorems 6-10 bound.
//
// On top of the plain barrier rounds sits a fault-aware tier
// (RunFallibleRound): reducer attempts return Status instead of aborting,
// failed attempts are retried with a bounded budget, wall-clock stragglers
// are speculatively re-launched, and a deterministic FaultInjector can
// script every failure mode so recovery paths are reproducible unit tests.
// This executor is the substrate a real multi-process transport plugs into:
// its failure semantics (deterministic re-execution, first-commit-wins,
// bounded retries, per-round accounting) are transport-independent.

#ifndef DIVERSE_MAPREDUCE_MAPREDUCE_H_
#define DIVERSE_MAPREDUCE_MAPREDUCE_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "mapreduce/executor_clock.h"
#include "mapreduce/fault_injector.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace diverse {

/// Observability record for one simulated round.
struct RoundStats {
  std::string name;
  size_t num_reducers = 0;
  double wall_seconds = 0.0;
  /// Per-reducer input sizes in points, as reported by the driver.
  std::vector<size_t> input_points;
  /// Per-reducer output sizes in points, as reported by the driver.
  std::vector<size_t> output_points;

  // Fault-tolerance accounting (all zero on the plain barrier rounds).
  /// Task attempts launched (== num_reducers when nothing went wrong).
  size_t attempts = 0;
  /// Attempts beyond the first per task (failure retries + speculative
  /// re-launches).
  size_t retries = 0;
  /// Speculative re-launches triggered by the straggler timeout.
  size_t timeouts = 0;
  /// Probes for which the FaultInjector fired a non-kNone fault.
  size_t faults_injected = 0;
  /// Tasks that exhausted their attempt budget, in ascending order.
  std::vector<size_t> failed_tasks;

  /// Largest reducer input — the M_L this round actually required.
  size_t MaxInputPoints() const;
  /// Sum of reducer outputs — the shuffle volume to the next round.
  size_t TotalOutputPoints() const;
};

/// Per-attempt context handed to a fallible reducer.
struct MrTaskContext {
  /// Task (reducer) index in [0, num_tasks).
  size_t task = 0;
  /// Attempt number, 0 for the first execution.
  size_t attempt = 0;
  /// Injected fault this attempt must apply to itself: a data fault
  /// (kEmptyOutput, kWrongOutput, kCorruptPartition) the reducer body
  /// simulates, or a transport fault (IsTransportFault) the reducer
  /// forwards to its CommunicationEngine call. Crash and straggler faults
  /// are handled by the executor and never reach the task.
  FaultKind fault = FaultKind::kNone;
  /// Sub-seed for deterministic corruption (data faults) or delay in ms
  /// (kReplyDelay).
  uint64_t fault_param = 0;
};

/// A fallible reducer attempt. Computes the task's output for `ctx` and, on
/// success, fills `*commit` with a closure that publishes the output into
/// the driver's result slot. The executor invokes at most one commit per
/// task (the first successful attempt wins; a speculative duplicate's
/// commit is dropped), serialized under the round lock — so attempts never
/// race on driver state even when a straggler and its speculative copy run
/// concurrently. Attempts must be deterministic: same (task, fault-free
/// input) => identical output, which is what makes retried and speculative
/// runs interchangeable.
using FallibleReducer =
    std::function<Status(const MrTaskContext& ctx, std::function<void()>* commit)>;

/// Execution policy of one fallible round.
struct FallibleRoundOptions {
  /// Total attempts per task (first run + retries). At least 1.
  size_t max_attempts = 3;
  /// Wall-clock budget per attempt in ms; an attempt still running past it
  /// triggers a speculative re-launch (if budget remains). 0 disables.
  uint64_t task_timeout_ms = 0;
  /// Fault schedule consulted per (round, task, attempt); null = fault-free.
  const FaultInjector* faults = nullptr;
  /// Time source for launch stamps and straggler deadlines. Null = the wall
  /// clock (RealExecutorClock). Tests inject a ManualExecutorClock to make
  /// timeout/speculative-relaunch behavior deterministic.
  ExecutorClock* clock = nullptr;
};

/// How a fallible round ended. nodiscard: a dropped outcome silently turns
/// permanently-failed tasks into missing results — the caller must either
/// degrade explicitly or abort.
struct [[nodiscard]] RoundOutcome {
  /// Tasks that exhausted their attempt budget, ascending.
  std::vector<size_t> failed_tasks;
  /// The last error of the first failed task; OK when none failed.
  Status first_error;

  bool ok() const { return failed_tasks.empty(); }
};

/// Executes rounds of reducer tasks on a fixed worker pool and accumulates
/// RoundStats. `num_workers` models the number of physical processors (the
/// "parallelism" axis of Figures 4 and 5); the number of reducers per round
/// is chosen by the caller and may exceed it, in which case reducers queue,
/// exactly like Spark tasks on a smaller cluster.
class MapReduceSimulator {
 public:
  explicit MapReduceSimulator(size_t num_workers);

  /// Runs `reducer(i)` for every i in [0, num_reducers), in parallel across
  /// the worker pool, and records timing. The reducer must fill in its
  /// input/output sizes through the returned stats object *before* the next
  /// round if it wants them recorded; more simply, use the overload below.
  void RunRound(const std::string& name, size_t num_reducers,
                const std::function<void(size_t)>& reducer);

  /// As above, but the driver also supplies per-reducer size reporters:
  /// sizes are recorded into the round's stats after the barrier.
  void RunRoundWithSizes(
      const std::string& name, size_t num_reducers,
      const std::function<void(size_t)>& reducer,
      const std::function<size_t(size_t)>& input_points_of,
      const std::function<size_t(size_t)>& output_points_of);

  /// Fault-tolerant round: every task is attempted up to
  /// `opts.max_attempts` times (failed attempts re-execute from the same
  /// input — deterministic reducers make re-runs bit-identical), attempts
  /// running past `opts.task_timeout_ms` get a speculative duplicate, and
  /// the injector (if any) is consulted per attempt. Returns the tasks that
  /// permanently failed; the caller decides whether to degrade (drop their
  /// output) or abort. Blocks until every launched attempt has finished —
  /// losers of speculative races included — so driver state captured by the
  /// reducer closures may be stack-local to the caller.
  DIVERSE_MUST_USE RoundOutcome RunFallibleRound(
      const std::string& name, size_t num_tasks, const FallibleReducer& task,
      const FallibleRoundOptions& opts,
      const std::function<size_t(size_t)>& input_points_of,
      const std::function<size_t(size_t)>& output_points_of);

  /// Stats of every round run so far, in order.
  const std::vector<RoundStats>& rounds() const { return rounds_; }

  /// Number of rounds executed.
  size_t num_rounds() const { return rounds_.size(); }

  size_t num_workers() const { return pool_.num_threads(); }

 private:
  ThreadPool pool_;
  std::vector<RoundStats> rounds_;
};

}  // namespace diverse

#endif  // DIVERSE_MAPREDUCE_MAPREDUCE_H_
