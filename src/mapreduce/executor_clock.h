// The time source of the fault-tolerant executor's straggler machinery.
//
// RunFallibleRound reads the clock twice per scheduling decision: stamping
// an attempt's launch time, and comparing elapsed time against the
// straggler timeout while (timed-)waiting on the round's condition
// variable. Routing both through this interface makes timeout and
// speculative-relaunch behavior *injectable*: production uses the wall
// clock (RealExecutorClock), while tests drive a ManualExecutorClock whose
// timed waits simply advance fake time to the deadline — a "timeout" then
// fires deterministically on the first wait instead of after a
// sleep-calibrated real delay, so speculative-execution tests cannot flake
// on a loaded machine.

#ifndef DIVERSE_MAPREDUCE_EXECUTOR_CLOCK_H_
#define DIVERSE_MAPREDUCE_EXECUTOR_CLOCK_H_

#include <atomic>
#include <chrono>

#include "util/thread_annotations.h"

namespace diverse {

/// Abstract time source of one fallible round. Now() must be thread-safe
/// (attempt launches stamp it from pool threads); WaitUntil is only called
/// by the driver thread, holding `mu`.
class ExecutorClock {
 public:
  using TimePoint = std::chrono::steady_clock::time_point;

  virtual ~ExecutorClock() = default;

  /// Current time. Monotone non-decreasing across calls.
  virtual TimePoint Now() const = 0;

  /// Blocks on `cv` (releasing `mu`) until notified, `deadline` passes, or
  /// — for a manual clock — fake time is advanced to the deadline.
  virtual void WaitUntil(CondVar& cv, Mutex& mu, TimePoint deadline)
      DIVERSE_REQUIRES(mu) = 0;
};

/// The wall-clock implementation (std::chrono::steady_clock + a real timed
/// wait). Stateless singleton; the default when no clock is injected.
ExecutorClock* RealExecutorClock();

/// A test clock with manually-advanced time. Now() starts at an arbitrary
/// fixed epoch. WaitUntil never blocks on the deadline: it advances fake
/// time to `deadline` and returns, simulating "the timeout fired with
/// nothing else happening" — the executor then takes its straggler branch
/// immediately and deterministically. (The executor falls back to the
/// plain untimed Wait once no relaunchable deadline remains, so manual
/// time cannot spin the driver loop.)
class ManualExecutorClock : public ExecutorClock {
 public:
  ManualExecutorClock() = default;

  TimePoint Now() const override {
    return kEpoch + std::chrono::nanoseconds(
                        offset_ns_.load(std::memory_order_acquire));
  }

  void WaitUntil(CondVar& cv, Mutex& mu, TimePoint deadline) override
      DIVERSE_REQUIRES(mu) {
    (void)cv;
    (void)mu;
    AdvanceTo(deadline);
  }

  /// Advances fake time to `t` if it is ahead of the current fake time.
  void AdvanceTo(TimePoint t) {
    const int64_t target =
        std::chrono::duration_cast<std::chrono::nanoseconds>(t - kEpoch)
            .count();
    int64_t cur = offset_ns_.load(std::memory_order_relaxed);
    while (cur < target && !offset_ns_.compare_exchange_weak(
                               cur, target, std::memory_order_acq_rel)) {
    }
  }

  /// Advances fake time by `d`.
  void Advance(std::chrono::nanoseconds d) { AdvanceTo(Now() + d); }

 private:
  // Fixed epoch well above zero so subtracting timeouts never underflows.
  static constexpr TimePoint kEpoch =
      TimePoint(std::chrono::duration_cast<TimePoint::duration>(
          std::chrono::hours(1)));
  std::atomic<int64_t> offset_ns_{0};
};

}  // namespace diverse

#endif  // DIVERSE_MAPREDUCE_EXECUTOR_CLOCK_H_
