// Deterministic fault injection for the MapReduce executor.
//
// Every failure scenario the fault-tolerant executor must survive — reducer
// crash, wrong or empty output, straggler delay, corrupted partition bytes —
// is described by a FaultInjector and consulted by the executor per
// (round, task, attempt). The injector is a pure function of its
// configuration: an explicit spec list plus an optional seeded stochastic
// layer whose draws are *hashes* of (seed, round, task, attempt), never a
// shared mutable RNG stream. Probing is therefore thread-safe, independent
// of scheduling order, and reproducible — the same schedule fires the same
// faults on every run, which is what turns each recovery path into a unit
// test instead of a flake.
//
// Text format (CLI --fault-spec, README "Fault tolerance & degradation"):
//   spec      := round ":" task ":" attempt ":" kind [":" param]
//   schedule  := spec { "," spec }
//   kind      := crash | empty-output | wrong-output | corrupt-partition |
//                straggler | worker-crash | conn-drop | frame-corrupt |
//                reply-delay | cache-evict | read-stall
// ('_' is accepted wherever '-' appears in a kind name.)
// e.g. "coreset:2:0:crash,coreset:5:0:straggler:100" crashes reducer 2's
// first attempt of the round named "coreset" and delays reducer 5 by 100ms;
// "coreset:3:0:worker-crash" SIGKILLs the worker process serving reducer
// 3's first attempt on the socket transport.

#ifndef DIVERSE_MAPREDUCE_FAULT_INJECTOR_H_
#define DIVERSE_MAPREDUCE_FAULT_INJECTOR_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace diverse {

/// What goes wrong with one task attempt.
enum class FaultKind : uint8_t {
  kNone = 0,
  /// The reducer dies before producing output; the attempt fails
  /// immediately with kAborted and never runs the task body.
  kCrash,
  /// The reducer completes but emits no output; caught by the round's
  /// output validation and retried.
  kEmptyOutput,
  /// The reducer emits garbage output (the driver garbles its own result,
  /// e.g. a NaN coordinate); caught by output validation and retried.
  kWrongOutput,
  /// The reducer's input partition arrives with corrupted bytes (the driver
  /// scrambles its local copy); caught by input validation and retried —
  /// re-reading the pristine partition makes the retry succeed.
  kCorruptPartition,
  /// The reducer runs correctly but only after sleeping `param`
  /// milliseconds — the straggler the wall-clock timeout + speculative
  /// re-launch path exists for.
  kStraggler,

  // Transport faults: injected at the communication layer of the attempt
  // (comm/). The executor forwards them through MrTaskContext::fault like
  // the data faults; the engine backing the attempt's compute applies them.
  /// The worker process serving the attempt is SIGKILLed after the request
  /// is sent; the RPC fails with kAborted and the worker is respawned.
  kWorkerCrash,
  /// The connection to the worker drops mid-RPC (fd closed); the RPC fails
  /// with kUnavailable and the transport reconnects to a fresh worker.
  kConnDrop,
  /// One byte of the reply frame is corrupted in flight; the checksum
  /// catches it and the RPC fails with kDataLoss.
  kFrameCorrupt,
  /// The worker delays its reply by `param` ms (default 50); the RPC
  /// deadline expires first and the attempt fails with kDeadlineExceeded.
  kReplyDelay,
  /// The attempt's partition is evicted from the worker's cache before the
  /// request is sent. A success-path fault: the by-ref request misses, the
  /// driver transparently falls back to a full re-ship, and the attempt
  /// still succeeds — exercising the cache-miss degraded path end to end.
  kCacheEvict,
  /// The worker stops reading its socket for `param` ms (default: past the
  /// RPC deadline) while the request ships; on a partition larger than the
  /// kernel socket buffer the driver's write deadline expires and the
  /// attempt fails with kDeadlineExceeded instead of hanging forever.
  kReadStall,
};

/// True for the faults applied by the communication layer (kWorkerCrash,
/// kConnDrop, kFrameCorrupt, kReplyDelay) rather than the executor or the
/// reducer body.
bool IsTransportFault(FaultKind kind);

/// Short name, e.g. "crash" or "worker-crash".
const char* FaultKindName(FaultKind kind);

/// One scheduled fault: fires when the executor probes exactly
/// (round, task, attempt).
struct FaultSpec {
  std::string round;
  size_t task = 0;
  size_t attempt = 0;
  FaultKind kind = FaultKind::kNone;
  /// kStraggler: delay in ms (0 means the 50ms default).
  /// kWrongOutput/kCorruptPartition: corruption sub-seed.
  uint64_t param = 0;
};

/// The fault (if any) an executor probe drew.
struct InjectedFault {
  FaultKind kind = FaultKind::kNone;
  uint64_t param = 0;
};

/// Per-probe firing probabilities of the seeded stochastic layer. All zero
/// by default; rates apply independently per (round, task, attempt) probe
/// in the listed priority order (first match wins).
struct FaultRates {
  double crash = 0.0;
  double empty_output = 0.0;
  double wrong_output = 0.0;
  double corrupt_partition = 0.0;
  double straggler = 0.0;
  uint64_t straggler_delay_ms = 50;
};

/// A deterministic per-task fault schedule. Default-constructed: no faults.
/// Probe() is const and thread-safe.
class FaultInjector {
 public:
  FaultInjector() = default;

  /// Adds an explicit scheduled fault.
  void Add(FaultSpec spec);

  /// An injector whose stochastic layer draws from hash(seed, probe) with
  /// the given rates; explicit specs can still be Add()ed on top and take
  /// precedence.
  static FaultInjector Seeded(uint64_t seed, const FaultRates& rates);

  /// Enables the stochastic layer on this injector (e.g. on top of a
  /// Parse()d explicit schedule).
  void SetSeeded(uint64_t seed, const FaultRates& rates);

  /// Parses the comma-separated spec list documented above. Returns
  /// kInvalidArgument with the offending spec quoted on malformed input.
  static StatusOr<FaultInjector> Parse(const std::string& text);

  /// The fault (kNone almost always) scheduled for this attempt.
  InjectedFault Probe(const std::string& round, size_t task,
                      size_t attempt) const;

  /// True when no explicit spec is registered and no stochastic rate is
  /// positive — Probe always returns kNone.
  bool empty() const;

  size_t num_specs() const { return specs_.size(); }

 private:
  std::vector<FaultSpec> specs_;
  bool seeded_ = false;
  uint64_t seed_ = 0;
  FaultRates rates_;
};

}  // namespace diverse

#endif  // DIVERSE_MAPREDUCE_FAULT_INJECTOR_H_
