// Input partitioning strategies for the MapReduce algorithms.
//
// Theorems 4-6 hold for *arbitrary* partitions (that is the point of
// composable core-sets), but Section 7.2 of the paper studies how the
// partition affects practical quality: a random shuffle is the default, and
// an "adversarial" partition that confines each reducer to a region of
// small volume worsens the ratio by up to ~10%. We provide all three
// strategies used there.

#ifndef DIVERSE_MAPREDUCE_PARTITIONER_H_
#define DIVERSE_MAPREDUCE_PARTITIONER_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/metric.h"
#include "core/point.h"

namespace diverse {

/// How the input is split among reducers.
enum class PartitionStrategy : uint8_t {
  /// Contiguous equal-size blocks in input order.
  kChunked,
  /// Random shuffle, then equal-size blocks (the paper's default).
  kRandom,
  /// Sorted so that each block covers a small-volume region: dense points
  /// are sorted lexicographically by coordinates; other points by distance
  /// to the first point (thin metric shells). This is the obfuscating
  /// partition of Section 7.2.
  kAdversarial,
};

/// Short name, e.g. "random".
std::string PartitionStrategyName(PartitionStrategy strategy);

/// Splits `points` into `num_parts` subsets of (near-)equal size according
/// to `strategy`. `metric` is needed only for kAdversarial on sparse points;
/// it may be null otherwise. Requires num_parts >= 1. When num_parts exceeds
/// points.size() (including an empty input), exactly num_parts parts are
/// still returned: the first points.size() hold one point each and the tail
/// parts are empty — reducers tolerate empty inputs, so a fixed fleet size
/// never crashes on a small round.
std::vector<PointSet> PartitionPoints(std::span<const Point> points,
                                      size_t num_parts,
                                      PartitionStrategy strategy,
                                      uint64_t seed,
                                      const Metric* metric = nullptr);

}  // namespace diverse

#endif  // DIVERSE_MAPREDUCE_PARTITIONER_H_
