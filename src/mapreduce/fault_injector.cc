#include "mapreduce/fault_injector.h"

#include <cstdlib>
#include <utility>

namespace diverse {

namespace {

// splitmix64 finalizer: the same mixer Rng seeds with, used here to turn a
// (seed, round, task, attempt) tuple into an independent uniform draw. A
// stateless hash (rather than an RNG stream) is what makes probes
// order-independent: reducers can probe concurrently and in any schedule
// without perturbing each other's draws.
uint64_t Mix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

uint64_t HashProbe(uint64_t seed, const std::string& round, size_t task,
                   size_t attempt) {
  uint64_t h = Mix64(seed);
  for (char c : round) h = Mix64(h ^ static_cast<uint8_t>(c));
  h = Mix64(h ^ static_cast<uint64_t>(task));
  h = Mix64(h ^ (static_cast<uint64_t>(attempt) << 32));
  return h;
}

double ToUnitDouble(uint64_t bits) {
  return static_cast<double>(bits >> 11) * 0x1.0p-53;
}

}  // namespace

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone: return "none";
    case FaultKind::kCrash: return "crash";
    case FaultKind::kEmptyOutput: return "empty-output";
    case FaultKind::kWrongOutput: return "wrong-output";
    case FaultKind::kCorruptPartition: return "corrupt-partition";
    case FaultKind::kStraggler: return "straggler";
    case FaultKind::kWorkerCrash: return "worker-crash";
    case FaultKind::kConnDrop: return "conn-drop";
    case FaultKind::kFrameCorrupt: return "frame-corrupt";
    case FaultKind::kReplyDelay: return "reply-delay";
    case FaultKind::kCacheEvict: return "cache-evict";
    case FaultKind::kReadStall: return "read-stall";
  }
  return "unknown";
}

bool IsTransportFault(FaultKind kind) {
  return kind == FaultKind::kWorkerCrash || kind == FaultKind::kConnDrop ||
         kind == FaultKind::kFrameCorrupt || kind == FaultKind::kReplyDelay ||
         kind == FaultKind::kCacheEvict || kind == FaultKind::kReadStall;
}

void FaultInjector::Add(FaultSpec spec) { specs_.push_back(std::move(spec)); }

FaultInjector FaultInjector::Seeded(uint64_t seed, const FaultRates& rates) {
  FaultInjector injector;
  injector.SetSeeded(seed, rates);
  return injector;
}

void FaultInjector::SetSeeded(uint64_t seed, const FaultRates& rates) {
  seeded_ = true;
  seed_ = seed;
  rates_ = rates;
}

bool FaultInjector::empty() const {
  if (!specs_.empty()) return false;
  if (!seeded_) return true;
  return rates_.crash <= 0.0 && rates_.empty_output <= 0.0 &&
         rates_.wrong_output <= 0.0 && rates_.corrupt_partition <= 0.0 &&
         rates_.straggler <= 0.0;
}

InjectedFault FaultInjector::Probe(const std::string& round, size_t task,
                                   size_t attempt) const {
  for (const FaultSpec& s : specs_) {
    if (s.task == task && s.attempt == attempt && s.round == round) {
      return {s.kind, s.param};
    }
  }
  if (seeded_) {
    uint64_t h = HashProbe(seed_, round, task, attempt);
    double u = ToUnitDouble(h);
    double cum = rates_.crash;
    if (u < cum) return {FaultKind::kCrash, 0};
    cum += rates_.empty_output;
    if (u < cum) return {FaultKind::kEmptyOutput, 0};
    cum += rates_.wrong_output;
    if (u < cum) return {FaultKind::kWrongOutput, Mix64(h)};
    cum += rates_.corrupt_partition;
    if (u < cum) return {FaultKind::kCorruptPartition, Mix64(h)};
    cum += rates_.straggler;
    if (u < cum) return {FaultKind::kStraggler, rates_.straggler_delay_ms};
  }
  return {};
}

namespace {

StatusOr<FaultKind> ParseKind(const std::string& name) {
  // '_' and '-' are interchangeable in kind names ("worker_crash" ==
  // "worker-crash"), matching common spellings in CLI flags and docs.
  std::string normalized = name;
  for (char& c : normalized) {
    if (c == '_') c = '-';
  }
  for (FaultKind k :
       {FaultKind::kCrash, FaultKind::kEmptyOutput, FaultKind::kWrongOutput,
        FaultKind::kCorruptPartition, FaultKind::kStraggler,
        FaultKind::kWorkerCrash, FaultKind::kConnDrop,
        FaultKind::kFrameCorrupt, FaultKind::kReplyDelay,
        FaultKind::kCacheEvict, FaultKind::kReadStall}) {
    if (normalized == FaultKindName(k)) return k;
  }
  return InvalidArgumentError("unknown fault kind '" + name + "'");
}

// Strict non-negative integer parse (the field must be all digits).
StatusOr<uint64_t> ParseUint(const std::string& field) {
  if (field.empty()) return InvalidArgumentError("empty numeric field");
  for (char c : field) {
    if (c < '0' || c > '9') {
      return InvalidArgumentError("non-numeric field '" + field + "'");
    }
  }
  return static_cast<uint64_t>(std::strtoull(field.c_str(), nullptr, 10));
}

std::vector<std::string> SplitOn(const std::string& text, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == sep) {
      out.push_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

}  // namespace

StatusOr<FaultInjector> FaultInjector::Parse(const std::string& text) {
  FaultInjector injector;
  if (text.empty()) return injector;
  for (const std::string& item : SplitOn(text, ',')) {
    std::vector<std::string> fields = SplitOn(item, ':');
    if (fields.size() < 4 || fields.size() > 5) {
      return InvalidArgumentError(
          "bad fault spec '" + item +
          "': want round:task:attempt:kind[:param]");
    }
    FaultSpec spec;
    spec.round = fields[0];
    if (spec.round.empty()) {
      return InvalidArgumentError("bad fault spec '" + item +
                                  "': empty round name");
    }
    StatusOr<uint64_t> task = ParseUint(fields[1]);
    if (!task.ok()) {
      return InvalidArgumentError("bad fault spec '" + item + "': " +
                                  task.status().message());
    }
    spec.task = static_cast<size_t>(*task);
    StatusOr<uint64_t> attempt = ParseUint(fields[2]);
    if (!attempt.ok()) {
      return InvalidArgumentError("bad fault spec '" + item + "': " +
                                  attempt.status().message());
    }
    spec.attempt = static_cast<size_t>(*attempt);
    StatusOr<FaultKind> kind = ParseKind(fields[3]);
    if (!kind.ok()) {
      return InvalidArgumentError("bad fault spec '" + item + "': " +
                                  kind.status().message());
    }
    spec.kind = *kind;
    if (fields.size() == 5) {
      StatusOr<uint64_t> param = ParseUint(fields[4]);
      if (!param.ok()) {
        return InvalidArgumentError("bad fault spec '" + item + "': " +
                                    param.status().message());
      }
      spec.param = *param;
    }
    injector.Add(std::move(spec));
  }
  return injector;
}

}  // namespace diverse
