#include "mapreduce/mapreduce.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <numeric>
#include <thread>

#include "util/check.h"
#include "util/timer.h"

namespace diverse {

size_t RoundStats::MaxInputPoints() const {
  size_t m = 0;
  for (size_t s : input_points) m = std::max(m, s);
  return m;
}

size_t RoundStats::TotalOutputPoints() const {
  return std::accumulate(output_points.begin(), output_points.end(),
                         size_t{0});
}

MapReduceSimulator::MapReduceSimulator(size_t num_workers)
    : pool_(num_workers) {}

void MapReduceSimulator::RunRound(const std::string& name, size_t num_reducers,
                                  const std::function<void(size_t)>& reducer) {
  RunRoundWithSizes(
      name, num_reducers, reducer, [](size_t) { return 0; },
      [](size_t) { return 0; });
}

void MapReduceSimulator::RunRoundWithSizes(
    const std::string& name, size_t num_reducers,
    const std::function<void(size_t)>& reducer,
    const std::function<size_t(size_t)>& input_points_of,
    const std::function<size_t(size_t)>& output_points_of) {
  Timer timer;
  pool_.ParallelFor(num_reducers, reducer);
  RoundStats stats;
  stats.name = name;
  stats.num_reducers = num_reducers;
  stats.attempts = num_reducers;
  stats.wall_seconds = timer.Seconds();
  stats.input_points.resize(num_reducers);
  stats.output_points.resize(num_reducers);
  for (size_t i = 0; i < num_reducers; ++i) {
    stats.input_points[i] = input_points_of(i);
    stats.output_points[i] = output_points_of(i);
  }
  rounds_.push_back(std::move(stats));
}

namespace {

using Clock = std::chrono::steady_clock;

// Per-task scheduling state of one fallible round. Guarded by the round
// mutex except where noted.
struct FallibleTaskState {
  size_t attempts_started = 0;
  size_t attempts_in_flight = 0;
  bool done = false;    // a successful attempt committed
  bool failed = false;  // budget exhausted, nothing in flight
  Clock::time_point last_launch{};
  Status last_error;
};

}  // namespace

RoundOutcome MapReduceSimulator::RunFallibleRound(
    const std::string& name, size_t num_tasks, const FallibleReducer& task,
    const FallibleRoundOptions& opts,
    const std::function<size_t(size_t)>& input_points_of,
    const std::function<size_t(size_t)>& output_points_of) {
  DIVERSE_CHECK_GE(opts.max_attempts, 1u);
  Timer timer;
  RoundStats stats;
  stats.name = name;
  stats.num_reducers = num_tasks;
  RoundOutcome outcome;

  // All closures capture this stack frame by reference; the loop below does
  // not return until every launched attempt has reported back (losers of
  // speculative races included), so the references stay valid and the next
  // round can safely reuse or destroy driver buffers.
  std::mutex mu;
  std::condition_variable cv;
  std::vector<FallibleTaskState> tasks(num_tasks);
  size_t unresolved = num_tasks;  // tasks neither done nor failed
  size_t in_flight = 0;           // attempts launched but not reported

  // Launches the next attempt of task i. Requires mu held.
  std::function<void(size_t, bool)> launch = [&](size_t i, bool speculative) {
    FallibleTaskState& ts = tasks[i];
    const size_t attempt = ts.attempts_started++;
    ++ts.attempts_in_flight;
    ts.last_launch = Clock::now();
    ++stats.attempts;
    if (attempt > 0) ++stats.retries;
    if (speculative) ++stats.timeouts;
    InjectedFault fault;
    if (opts.faults != nullptr) {
      fault = opts.faults->Probe(name, i, attempt);
      if (fault.kind != FaultKind::kNone) ++stats.faults_injected;
    }
    ++in_flight;
    pool_.Submit([&, i, attempt, fault] {
      Status status;
      std::function<void()> commit;
      if (fault.kind == FaultKind::kCrash) {
        // The reducer dies before doing any work: no task body, no output.
        status = AbortedError("injected crash (round '" + name + "', task " +
                              std::to_string(i) + ", attempt " +
                              std::to_string(attempt) + ")");
      } else {
        if (fault.kind == FaultKind::kStraggler) {
          std::this_thread::sleep_for(std::chrono::milliseconds(
              fault.param == 0 ? 50 : fault.param));
        }
        MrTaskContext ctx;
        ctx.task = i;
        ctx.attempt = attempt;
        if (fault.kind == FaultKind::kEmptyOutput ||
            fault.kind == FaultKind::kWrongOutput ||
            fault.kind == FaultKind::kCorruptPartition) {
          ctx.fault = fault.kind;
          ctx.fault_param = fault.param;
        }
        status = task(ctx, &commit);
      }
      std::unique_lock<std::mutex> lock(mu);
      --in_flight;
      FallibleTaskState& ts2 = tasks[i];
      --ts2.attempts_in_flight;
      if (!ts2.done && !ts2.failed) {
        if (status.ok()) {
          // First successful attempt wins; the commit runs under the round
          // lock so a concurrent speculative duplicate can never interleave
          // with it on the driver's output slot.
          ts2.done = true;
          --unresolved;
          if (commit) commit();
        } else {
          ts2.last_error = status;
          if (ts2.attempts_started < opts.max_attempts) {
            launch(i, /*speculative=*/false);
          } else if (ts2.attempts_in_flight == 0) {
            // Budget spent and no speculative copy still racing: the task
            // is permanently failed.
            ts2.failed = true;
            --unresolved;
          }
          // else: a duplicate attempt is still running and may yet succeed.
        }
      }
      cv.notify_all();
    });
  };

  {
    std::unique_lock<std::mutex> lock(mu);
    for (size_t i = 0; i < num_tasks; ++i) launch(i, /*speculative=*/false);
    const auto timeout = std::chrono::milliseconds(opts.task_timeout_ms);
    while (unresolved > 0 || in_flight > 0) {
      if (opts.task_timeout_ms == 0) {
        cv.wait(lock);
        continue;
      }
      // Earliest straggler deadline among running, relaunchable tasks.
      bool have_deadline = false;
      Clock::time_point next_deadline{};
      for (const FallibleTaskState& ts : tasks) {
        if (ts.done || ts.failed || ts.attempts_in_flight == 0) continue;
        if (ts.attempts_started >= opts.max_attempts) continue;
        Clock::time_point d = ts.last_launch + timeout;
        if (!have_deadline || d < next_deadline) {
          have_deadline = true;
          next_deadline = d;
        }
      }
      if (!have_deadline) {
        cv.wait(lock);
        continue;
      }
      cv.wait_until(lock, next_deadline);
      const Clock::time_point now = Clock::now();
      for (size_t i = 0; i < num_tasks; ++i) {
        FallibleTaskState& ts = tasks[i];
        if (ts.done || ts.failed || ts.attempts_in_flight == 0) continue;
        if (ts.attempts_started >= opts.max_attempts) continue;
        if (now - ts.last_launch >= timeout) {
          // Straggler: leave the slow attempt running (it may still win)
          // and race a speculative duplicate against it.
          launch(i, /*speculative=*/true);
        }
      }
    }
    for (size_t i = 0; i < num_tasks; ++i) {
      if (tasks[i].failed) {
        outcome.failed_tasks.push_back(i);
        if (outcome.first_error.ok()) {
          outcome.first_error = tasks[i].last_error;
        }
      }
    }
  }

  stats.failed_tasks = outcome.failed_tasks;
  stats.wall_seconds = timer.Seconds();
  stats.input_points.resize(num_tasks);
  stats.output_points.resize(num_tasks);
  for (size_t i = 0; i < num_tasks; ++i) {
    stats.input_points[i] = input_points_of(i);
    stats.output_points[i] = output_points_of(i);
  }
  rounds_.push_back(std::move(stats));
  if (!outcome.failed_tasks.empty() && outcome.first_error.ok()) {
    outcome.first_error = InternalError("task failed without an error");
  }
  return outcome;
}

}  // namespace diverse
