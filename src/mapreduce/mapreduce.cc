#include "mapreduce/mapreduce.h"

#include <algorithm>
#include <chrono>
#include <numeric>
#include <thread>

#include "util/thread_annotations.h"

#include "util/check.h"
#include "util/timer.h"

namespace diverse {

size_t RoundStats::MaxInputPoints() const {
  size_t m = 0;
  for (size_t s : input_points) m = std::max(m, s);
  return m;
}

size_t RoundStats::TotalOutputPoints() const {
  return std::accumulate(output_points.begin(), output_points.end(),
                         size_t{0});
}

MapReduceSimulator::MapReduceSimulator(size_t num_workers)
    : pool_(num_workers) {}

void MapReduceSimulator::RunRound(const std::string& name, size_t num_reducers,
                                  const std::function<void(size_t)>& reducer) {
  RunRoundWithSizes(
      name, num_reducers, reducer, [](size_t) { return 0; },
      [](size_t) { return 0; });
}

void MapReduceSimulator::RunRoundWithSizes(
    const std::string& name, size_t num_reducers,
    const std::function<void(size_t)>& reducer,
    const std::function<size_t(size_t)>& input_points_of,
    const std::function<size_t(size_t)>& output_points_of) {
  Timer timer;
  pool_.ParallelFor(num_reducers, reducer);
  RoundStats stats;
  stats.name = name;
  stats.num_reducers = num_reducers;
  stats.attempts = num_reducers;
  stats.wall_seconds = timer.Seconds();
  stats.input_points.resize(num_reducers);
  stats.output_points.resize(num_reducers);
  for (size_t i = 0; i < num_reducers; ++i) {
    stats.input_points[i] = input_points_of(i);
    stats.output_points[i] = output_points_of(i);
  }
  rounds_.push_back(std::move(stats));
}

namespace {

// Per-task scheduling state of one fallible round. Guarded by the round
// mutex (FallibleRound::mu) through the owning vector.
struct FallibleTaskState {
  size_t attempts_started = 0;
  size_t attempts_in_flight = 0;
  bool done = false;    // a successful attempt committed
  bool failed = false;  // budget exhausted, nothing in flight
  ExecutorClock::TimePoint last_launch{};
  Status last_error;
};

// The shared state of one fallible round, annotated so -Wthread-safety
// proves the commit discipline: every mutation of the scheduling state and
// every driver-commit closure runs under `mu` (first-commit-wins), and the
// executor loop cannot read a counter without the lock. Lives on
// RunFallibleRound's stack; Launch()ed attempts capture a pointer, which
// stays valid because the round does not return until `in_flight` drains.
struct FallibleRound {
  FallibleRound(const std::string& name, const FallibleReducer& body,
                const FallibleRoundOptions& opts, ThreadPool& pool,
                size_t num_tasks)
      : name(name), body(body), opts(opts), pool(pool),
        clock(opts.clock != nullptr ? opts.clock : RealExecutorClock()),
        tasks(num_tasks), unresolved(num_tasks) {}

  // Immutable during the round.
  const std::string& name;
  const FallibleReducer& body;
  const FallibleRoundOptions& opts;
  ThreadPool& pool;
  ExecutorClock* const clock;

  Mutex mu;
  CondVar cv;
  std::vector<FallibleTaskState> tasks DIVERSE_GUARDED_BY(mu);
  size_t unresolved DIVERSE_GUARDED_BY(mu);   // tasks neither done nor failed
  size_t in_flight DIVERSE_GUARDED_BY(mu) = 0;  // launched, not reported
  RoundStats stats DIVERSE_GUARDED_BY(mu);      // attempt/retry accounting

  // Launches the next attempt of task i on the worker pool.
  void Launch(size_t i, bool speculative) DIVERSE_REQUIRES(mu);
  // An attempt finished: commit, retry, or fail under the round lock.
  void OnAttemptDone(size_t i, const Status& status,
                     const std::function<void()>& commit) DIVERSE_EXCLUDES(mu);
};

void FallibleRound::Launch(size_t i, bool speculative) {
  FallibleTaskState& ts = tasks[i];
  const size_t attempt = ts.attempts_started++;
  ++ts.attempts_in_flight;
  ts.last_launch = clock->Now();
  ++stats.attempts;
  if (attempt > 0) ++stats.retries;
  if (speculative) ++stats.timeouts;
  InjectedFault fault;
  if (opts.faults != nullptr) {
    fault = opts.faults->Probe(name, i, attempt);
    if (fault.kind != FaultKind::kNone) ++stats.faults_injected;
  }
  ++in_flight;
  pool.Submit([this, i, attempt, fault] {
    Status status;
    std::function<void()> commit;
    if (fault.kind == FaultKind::kCrash) {
      // The reducer dies before doing any work: no task body, no output.
      status = AbortedError("injected crash (round '" + name + "', task " +
                            std::to_string(i) + ", attempt " +
                            std::to_string(attempt) + ")");
    } else {
      if (fault.kind == FaultKind::kStraggler) {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(fault.param == 0 ? 50 : fault.param));
      }
      MrTaskContext ctx;
      ctx.task = i;
      ctx.attempt = attempt;
      if (fault.kind == FaultKind::kEmptyOutput ||
          fault.kind == FaultKind::kWrongOutput ||
          fault.kind == FaultKind::kCorruptPartition ||
          IsTransportFault(fault.kind)) {
        ctx.fault = fault.kind;
        ctx.fault_param = fault.param;
      }
      status = body(ctx, &commit);
    }
    OnAttemptDone(i, status, commit);
  });
}

void FallibleRound::OnAttemptDone(size_t i, const Status& status,
                                  const std::function<void()>& commit) {
  MutexLock lock(&mu);
  --in_flight;
  FallibleTaskState& ts = tasks[i];
  --ts.attempts_in_flight;
  if (!ts.done && !ts.failed) {
    if (status.ok()) {
      // First successful attempt wins; the commit runs under the round
      // lock so a concurrent speculative duplicate can never interleave
      // with it on the driver's output slot.
      ts.done = true;
      --unresolved;
      if (commit) commit();
    } else {
      ts.last_error = status;
      if (ts.attempts_started < opts.max_attempts) {
        Launch(i, /*speculative=*/false);
      } else if (ts.attempts_in_flight == 0) {
        // Budget spent and no speculative copy still racing: the task
        // is permanently failed.
        ts.failed = true;
        --unresolved;
      }
      // else: a duplicate attempt is still running and may yet succeed.
    }
  }
  // Notify while still holding the round lock: the instant this thread
  // releases `mu` with in_flight drained, the driver may observe the exit
  // predicate and destroy the whole FallibleRound (it lives on the
  // driver's stack), so an after-unlock notify would touch a dead CondVar
  // — a use-after-free that can silently corrupt the *next* round's wait
  // state. Under the lock, no waiter can return from Wait (and free the
  // round) before this notify completes.
  cv.NotifyAll();
}

}  // namespace

RoundOutcome MapReduceSimulator::RunFallibleRound(
    const std::string& name, size_t num_tasks, const FallibleReducer& task,
    const FallibleRoundOptions& opts,
    const std::function<size_t(size_t)>& input_points_of,
    const std::function<size_t(size_t)>& output_points_of) {
  DIVERSE_CHECK_GE(opts.max_attempts, 1u);
  Timer timer;
  RoundOutcome outcome;
  RoundStats stats;

  // The round state lives on this stack frame; the loop below does not
  // return until every launched attempt has reported back (losers of
  // speculative races included), so pointers captured by the attempt
  // closures stay valid and the next round can safely reuse or destroy
  // driver buffers.
  FallibleRound round(name, task, opts, pool_, num_tasks);

  {
    MutexLock lock(&round.mu);
    round.stats.name = name;
    round.stats.num_reducers = num_tasks;
    for (size_t i = 0; i < num_tasks; ++i) {
      round.Launch(i, /*speculative=*/false);
    }
    const auto timeout = std::chrono::milliseconds(opts.task_timeout_ms);
    while (round.unresolved > 0 || round.in_flight > 0) {
      if (opts.task_timeout_ms == 0) {
        round.cv.Wait(round.mu);
        continue;
      }
      // Earliest straggler deadline among running, relaunchable tasks.
      bool have_deadline = false;
      ExecutorClock::TimePoint next_deadline{};
      for (const FallibleTaskState& ts : round.tasks) {
        if (ts.done || ts.failed || ts.attempts_in_flight == 0) continue;
        if (ts.attempts_started >= opts.max_attempts) continue;
        ExecutorClock::TimePoint d = ts.last_launch + timeout;
        if (!have_deadline || d < next_deadline) {
          have_deadline = true;
          next_deadline = d;
        }
      }
      if (!have_deadline) {
        round.cv.Wait(round.mu);
        continue;
      }
      round.clock->WaitUntil(round.cv, round.mu, next_deadline);
      const ExecutorClock::TimePoint now = round.clock->Now();
      for (size_t i = 0; i < num_tasks; ++i) {
        FallibleTaskState& ts = round.tasks[i];
        if (ts.done || ts.failed || ts.attempts_in_flight == 0) continue;
        if (ts.attempts_started >= opts.max_attempts) continue;
        if (now - ts.last_launch >= timeout) {
          // Straggler: leave the slow attempt running (it may still win)
          // and race a speculative duplicate against it.
          round.Launch(i, /*speculative=*/true);
        }
      }
    }
    for (size_t i = 0; i < num_tasks; ++i) {
      if (round.tasks[i].failed) {
        outcome.failed_tasks.push_back(i);
        if (outcome.first_error.ok()) {
          outcome.first_error = round.tasks[i].last_error;
        }
      }
    }
    // Every attempt has drained; move the accounting out while still
    // holding the lock the attempts updated it under.
    stats = std::move(round.stats);
  }

  stats.failed_tasks = outcome.failed_tasks;
  stats.wall_seconds = timer.Seconds();
  stats.input_points.resize(num_tasks);
  stats.output_points.resize(num_tasks);
  for (size_t i = 0; i < num_tasks; ++i) {
    stats.input_points[i] = input_points_of(i);
    stats.output_points[i] = output_points_of(i);
  }
  rounds_.push_back(std::move(stats));
  if (!outcome.failed_tasks.empty() && outcome.first_error.ok()) {
    outcome.first_error = InternalError("task failed without an error");
  }
  return outcome;
}

}  // namespace diverse
