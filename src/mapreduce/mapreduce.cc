#include "mapreduce/mapreduce.h"

#include <algorithm>
#include <numeric>

#include "util/timer.h"

namespace diverse {

size_t RoundStats::MaxInputPoints() const {
  size_t m = 0;
  for (size_t s : input_points) m = std::max(m, s);
  return m;
}

size_t RoundStats::TotalOutputPoints() const {
  return std::accumulate(output_points.begin(), output_points.end(),
                         size_t{0});
}

MapReduceSimulator::MapReduceSimulator(size_t num_workers)
    : pool_(num_workers) {}

void MapReduceSimulator::RunRound(const std::string& name, size_t num_reducers,
                                  const std::function<void(size_t)>& reducer) {
  RunRoundWithSizes(
      name, num_reducers, reducer, [](size_t) { return 0; },
      [](size_t) { return 0; });
}

void MapReduceSimulator::RunRoundWithSizes(
    const std::string& name, size_t num_reducers,
    const std::function<void(size_t)>& reducer,
    const std::function<size_t(size_t)>& input_points_of,
    const std::function<size_t(size_t)>& output_points_of) {
  Timer timer;
  pool_.ParallelFor(num_reducers, reducer);
  RoundStats stats;
  stats.name = name;
  stats.num_reducers = num_reducers;
  stats.wall_seconds = timer.Seconds();
  stats.input_points.resize(num_reducers);
  stats.output_points.resize(num_reducers);
  for (size_t i = 0; i < num_reducers; ++i) {
    stats.input_points[i] = input_points_of(i);
    stats.output_points[i] = output_points_of(i);
  }
  rounds_.push_back(std::move(stats));
}

}  // namespace diverse
