#include "mapreduce/partitioner.h"

#include <algorithm>
#include <numeric>

#include "util/check.h"
#include "util/rng.h"

namespace diverse {

std::string PartitionStrategyName(PartitionStrategy strategy) {
  switch (strategy) {
    case PartitionStrategy::kChunked:
      return "chunked";
    case PartitionStrategy::kRandom:
      return "random";
    case PartitionStrategy::kAdversarial:
      return "adversarial";
  }
  return "unknown";
}

namespace {

// Compares dense points lexicographically by coordinates.
bool LexLess(const Point& a, const Point& b) {
  const auto& va = a.dense_values();
  const auto& vb = b.dense_values();
  return std::lexicographical_compare(va.begin(), va.end(), vb.begin(),
                                      vb.end());
}

}  // namespace

std::vector<PointSet> PartitionPoints(std::span<const Point> points,
                                      size_t num_parts,
                                      PartitionStrategy strategy,
                                      uint64_t seed, const Metric* metric) {
  size_t n = points.size();
  DIVERSE_CHECK_GE(num_parts, 1u);
  // num_parts may exceed n (including n == 0): the first n parts receive one
  // point each and the tail parts stay empty. Callers distributing work to a
  // fixed reducer fleet rely on always getting num_parts parts back.

  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);

  switch (strategy) {
    case PartitionStrategy::kChunked:
      break;
    case PartitionStrategy::kRandom: {
      Rng rng(seed);
      for (size_t i = n; i > 1; --i) {
        std::swap(order[i - 1], order[rng.NextBounded(i)]);
      }
      break;
    }
    case PartitionStrategy::kAdversarial: {
      if (points.empty()) break;  // nothing to sort; no pivot to read
      if (!points[0].is_sparse()) {
        std::sort(order.begin(), order.end(), [&points](size_t a, size_t b) {
          return LexLess(points[a], points[b]);
        });
      } else {
        DIVERSE_CHECK(metric != nullptr);
        // Scalar pivot-distance sweep: a one-shot columnar re-layout would
        // cost more (n point copies) than the n virtual calls it saves.
        const Point& pivot = points[0];
        std::vector<double> key(n);
        for (size_t i = 0; i < n; ++i) {
          key[i] = metric->Distance(points[i], pivot);
        }
        std::sort(order.begin(), order.end(),
                  [&key](size_t a, size_t b) { return key[a] < key[b]; });
      }
      break;
    }
  }

  // Split `order` into num_parts blocks whose sizes differ by at most one.
  std::vector<PointSet> parts(num_parts);
  size_t base = n / num_parts;
  size_t extra = n % num_parts;
  size_t pos = 0;
  for (size_t p = 0; p < num_parts; ++p) {
    size_t len = base + (p < extra ? 1 : 0);
    parts[p].reserve(len);
    for (size_t i = 0; i < len; ++i) {
      parts[p].push_back(points[order[pos++]]);
    }
  }
  DIVERSE_CHECK_EQ(pos, n);
  return parts;
}

}  // namespace diverse
