#include "mapreduce/executor_clock.h"

namespace diverse {

namespace {

class RealClock final : public ExecutorClock {
 public:
  TimePoint Now() const override { return std::chrono::steady_clock::now(); }

  void WaitUntil(CondVar& cv, Mutex& mu, TimePoint deadline) override
      DIVERSE_REQUIRES(mu) {
    cv.WaitUntil(mu, deadline);
  }
};

}  // namespace

ExecutorClock* RealExecutorClock() {
  static RealClock clock;
  return &clock;
}

}  // namespace diverse
