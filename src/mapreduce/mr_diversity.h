// MapReduce diversity maximization — the "CPPU" algorithms of the paper.
//
//   * Run()            — the 2-round algorithm of Theorem 6: round 1 computes
//                        a composable core-set (GMM for remote-edge/-cycle,
//                        GMM-EXT for the other four) on each partition;
//                        round 2 aggregates the core-sets in one reducer and
//                        runs the sequential alpha-approximation. With the
//                        randomized delegate cap of Theorem 7 enabled, round
//                        1 caps delegates at Theta(max(log n, k/l)) instead
//                        of k-1, shrinking the aggregate core-set.
//   * RunGeneralized() — the 3-round algorithm of Theorem 10 (injective-proxy
//                        problems only): round 1 GMM-GEN, round 2 solves the
//                        multiset problem on the merged generalized core-set,
//                        round 3 instantiates distinct delegates per
//                        partition.
//   * RunRecursive()   — the multi-round recursion of Theorem 8: core-sets of
//                        core-sets until the aggregate fits the local memory
//                        budget.
//
// Every driver executes its rounds on the fault-tolerant executor
// (MapReduceSimulator::RunFallibleRound): reducer attempts validate their
// inputs and outputs, failed attempts retry up to MrOptions::max_retries
// times (re-execution from the pristine partition is bit-identical —
// deterministic reducers), and stragglers past MrOptions::task_timeout_ms
// race a speculative duplicate. The Try* entry points surface permanent
// failures as Status instead of aborting; when a round-1 partition exhausts
// its retries and MrOptions::allow_degraded is set, the run completes on
// the surviving partitions and reports a DegradedResult — composability of
// the core-sets (Theorem 4) means losing a partition shrinks the instance
// the guarantee speaks about rather than invalidating it.

#ifndef DIVERSE_MAPREDUCE_MR_DIVERSITY_H_
#define DIVERSE_MAPREDUCE_MR_DIVERSITY_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "comm/comm.h"
#include "core/dataset.h"
#include "core/diversity.h"
#include "core/metric.h"
#include "core/point.h"
#include "mapreduce/fault_injector.h"
#include "mapreduce/mapreduce.h"
#include "mapreduce/partitioner.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace diverse {

/// A free-list of scratch `Dataset`s shared by the reducers of one MapReduce
/// run: each reducer acquires a scratch, Assign()s its partition into it
/// (reusing the columnar array capacity from earlier partitions/rounds) and
/// returns it, instead of constructing a fresh Dataset per partition. At
/// most one scratch exists per concurrently running reducer.
class DatasetScratchPool {
 public:
  /// Pops a cleared scratch (or default-constructs one). Thread-safe:
  /// called concurrently by every reducer attempt of a round.
  Dataset Acquire() DIVERSE_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    if (free_.empty()) return Dataset();
    Dataset d = std::move(free_.back());
    free_.pop_back();
    return d;
  }

  /// Clears `d` (keeping capacity) and returns it to the free list.
  void Release(Dataset d) DIVERSE_EXCLUDES(mu_) {
    d.Clear();
    MutexLock lock(&mu_);
    free_.push_back(std::move(d));
  }

 private:
  Mutex mu_;
  std::vector<Dataset> free_ DIVERSE_GUARDED_BY(mu_);
};

/// Configuration of a MapReduce diversity run.
struct MrOptions {
  /// Solution size.
  size_t k = 8;
  /// Core-set kernel size per partition (k' of the paper); >= k.
  size_t k_prime = 8;
  /// Number of partitions l (== number of round-1 reducers).
  size_t num_partitions = 4;
  /// Number of simulated processors executing reducers.
  size_t num_workers = 4;
  /// How the input is split.
  PartitionStrategy partition = PartitionStrategy::kRandom;
  /// Seed for partitioning (and nothing else; the algorithms are
  /// deterministic given the partition).
  uint64_t seed = 1;
  /// Theorem 7: cap delegates per cluster at
  /// max(ceil(log2 n), ceil(k / num_partitions)) instead of k-1.
  bool randomized_delegate_cap = false;

  // Fault tolerance (consumed by the fallible executor).
  /// Retries per task beyond the first attempt.
  size_t max_retries = 2;
  /// Straggler wall-clock budget per attempt in ms; an attempt running past
  /// it races a speculative duplicate. 0 disables the timeout.
  uint64_t task_timeout_ms = 0;
  /// When a round-1 (core-set) partition permanently fails: true drops it
  /// and degrades the guarantee (DegradedResult); false fails the run.
  /// Failures of the single-reducer aggregation/solve rounds are always
  /// fatal — there is nothing left to degrade to.
  bool allow_degraded = true;
  /// Deterministic fault schedule; not owned, must outlive the driver.
  /// Null = fault-free execution (the retry machinery still runs, at
  /// bounded overhead — see BM_MrFaultRecovery).
  const FaultInjector* faults = nullptr;

  // Execution backend (the comm/ subsystem).
  /// Where task compute runs. Null = an internal LoopbackEngine on the
  /// driver's metric (the historical in-process simulator, bit-identical).
  /// A SocketEngine here runs every task in a worker process. Not owned;
  /// must outlive the driver's runs.
  CommunicationEngine* engine = nullptr;
  /// Aggregate round-1 core-sets through a binary tree of fallible
  /// "reduce-l<level>" merge rounds instead of one concatenation inside the
  /// solve reducer. Merging is order-preserving concatenation (associative,
  /// identity []), so the final aggregate — and hence the solution — is
  /// bit-identical to the single-aggregator path; the tree exercises
  /// multi-round shuffle and spreads merge work across workers.
  bool tree_reduce = false;
  /// Time source for the executor's straggler deadlines. Null = wall clock;
  /// tests inject a ManualExecutorClock for deterministic timeout runs.
  ExecutorClock* clock = nullptr;
};

/// Certificate of a degraded (partition-dropping) completion. The solution
/// is still an approximation — but of the diversity problem on the
/// *surviving* points: the union of surviving core-sets is a composable
/// core-set of the surviving partitions' union (Theorem 4 applied to l'
/// < l partitions), so the usual factor applies to that sub-instance.
/// `surviving_fraction` quantifies what the guarantee no longer covers.
struct DegradedResult {
  /// Round-1 partition (task) ids that exhausted their retry budget. For
  /// the recursive driver these are per-level task ids in failure order.
  std::vector<size_t> failed_partitions;
  /// Input points in surviving / all partitions of the degraded round(s).
  size_t surviving_points = 0;
  size_t total_points = 0;
  /// surviving_points / total_points (for the recursive driver, the product
  /// of per-level survival fractions).
  double surviving_fraction = 1.0;
  /// Certified approximation factor of `solution` relative to the optimum
  /// over the surviving points: the 2x core-set envelope on
  /// SequentialAlpha(problem) that approx_ratio_test asserts against
  /// brute-force enumeration of the surviving sub-instance.
  double approx_factor = 0.0;
};

/// Outcome of a MapReduce run.
struct MrResult {
  /// The k selected points.
  PointSet solution;
  /// div(solution) under the configured objective.
  double diversity = 0.0;
  /// Aggregate core-set size |T| fed to the final sequential step.
  size_t coreset_size = 0;
  /// max over reducers and rounds of the points a reducer held (the
  /// observed M_L).
  size_t max_local_memory_points = 0;
  /// Number of MR rounds executed.
  size_t rounds = 0;
  /// Wall time of each round, seconds.
  std::vector<double> round_seconds;
  /// Points shuffled between rounds (sum over all rounds of the reducers'
  /// output sizes) — the communication volume a real cluster would pay.
  size_t shuffle_points = 0;
  /// Total wall time, seconds.
  double total_seconds = 0.0;

  // Fault-tolerance accounting, summed over rounds.
  /// Task attempts launched (== reducer count when nothing went wrong).
  size_t task_attempts = 0;
  /// Attempts beyond the first per task.
  size_t task_retries = 0;
  /// Speculative re-launches triggered by the straggler timeout.
  size_t task_timeouts = 0;
  /// Fault-injector probes that fired.
  size_t faults_injected = 0;
  /// Present iff the run completed by dropping permanently-failed
  /// partitions.
  std::optional<DegradedResult> degraded;
};

/// Copies round count, per-round wall times, max reducer input (M_L), total
/// shuffle volume and the fault-tolerance counters from a finished
/// simulator into `result`. Shared by the CPPU drivers and the AFZ
/// baseline.
void AccumulateRoundStats(const MapReduceSimulator& sim, MrResult* result);

/// Driver for the MapReduce algorithms. Thread-safe for concurrent Run()
/// calls only through distinct instances.
class MapReduceDiversity {
 public:
  /// `metric` must outlive this object.
  MapReduceDiversity(const Metric* metric, DiversityProblem problem,
                     const MrOptions& options);

  /// 2-round algorithm (Theorems 6/7), fallible: recovers injected/transient
  /// task failures by bounded re-execution, degrades on permanent round-1
  /// partition loss (if allowed), and returns an error Status when the run
  /// cannot produce a certified result (aggregator failure, every partition
  /// lost, or degradation disallowed).
  StatusOr<MrResult> TryRun(const PointSet& input) const;

  /// 3-round generalized-core-set algorithm (Theorem 10). Requires an
  /// injective-proxy problem. Degradation applies to round 1 only; round-2
  /// solve and round-3 instantiation failures are fatal.
  StatusOr<MrResult> TryRunGeneralized(const PointSet& input) const;

  /// Multi-round recursion (Theorem 8): keeps compressing through rounds of
  /// composable core-sets until the aggregate has at most
  /// `local_memory_budget` points, then solves sequentially. Degradation
  /// applies at every compression level.
  StatusOr<MrResult> TryRunRecursive(const PointSet& input,
                                     size_t local_memory_budget) const;

  /// Infallible shims: CHECK that the Try* variant succeeded. With no
  /// injector configured the only failure sources are misconfiguration
  /// (checked in the constructor already), so these keep the historical
  /// contract for callers that opted out of error handling.
  MrResult Run(const PointSet& input) const;
  MrResult RunGeneralized(const PointSet& input) const;
  MrResult RunRecursive(const PointSet& input,
                        size_t local_memory_budget) const;

 private:
  // The core-set construction one partition needs under the configured
  // problem family (kernel size clamped to the partition, GMM vs GMM-EXT,
  // the Theorem-7 delegate cap). Executed by the engine.
  CoresetSpec MakeCoresetSpec(size_t part_size, size_t input_size) const;

  // The executor policy derived from options_.
  FallibleRoundOptions ExecPolicy() const;

  // Runs one fallible core-set round over `parts` on `engine`, committing
  // into `coresets` (resized to parts.size()). On permanent task failures:
  // degrades (drops the partitions, accumulating the certificate into
  // `*degraded`) when allowed, else returns the error. `round_name`
  // distinguishes recursion levels.
  Status CoresetRound(MapReduceSimulator* sim, CommunicationEngine* engine,
                      const std::string& round_name,
                      const std::vector<PointSet>& parts, size_t input_size,
                      std::vector<PointSet>* coresets,
                      std::optional<DegradedResult>* degraded) const;

  // Collapses `coresets` to a single aggregate via fallible
  // "reduce-l<level>" rounds of pairwise engine merges (MrOptions::
  // tree_reduce). Merge failures are fatal: a lost merge would drop
  // core-sets that already survived their own round.
  Status TreeReduce(MapReduceSimulator* sim, CommunicationEngine* engine,
                    std::vector<PointSet>* coresets) const;

  const Metric* metric_;
  DiversityProblem problem_;
  MrOptions options_;
};

}  // namespace diverse

#endif  // DIVERSE_MAPREDUCE_MR_DIVERSITY_H_
