// MapReduce diversity maximization — the "CPPU" algorithms of the paper.
//
//   * Run()            — the 2-round algorithm of Theorem 6: round 1 computes
//                        a composable core-set (GMM for remote-edge/-cycle,
//                        GMM-EXT for the other four) on each partition;
//                        round 2 aggregates the core-sets in one reducer and
//                        runs the sequential alpha-approximation. With the
//                        randomized delegate cap of Theorem 7 enabled, round
//                        1 caps delegates at Theta(max(log n, k/l)) instead
//                        of k-1, shrinking the aggregate core-set.
//   * RunGeneralized() — the 3-round algorithm of Theorem 10 (injective-proxy
//                        problems only): round 1 GMM-GEN, round 2 solves the
//                        multiset problem on the merged generalized core-set,
//                        round 3 instantiates distinct delegates per
//                        partition.
//   * RunRecursive()   — the multi-round recursion of Theorem 8: core-sets of
//                        core-sets until the aggregate fits the local memory
//                        budget.

#ifndef DIVERSE_MAPREDUCE_MR_DIVERSITY_H_
#define DIVERSE_MAPREDUCE_MR_DIVERSITY_H_

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

#include "core/dataset.h"
#include "core/diversity.h"
#include "core/metric.h"
#include "core/point.h"
#include "mapreduce/mapreduce.h"
#include "mapreduce/partitioner.h"

namespace diverse {

/// A free-list of scratch `Dataset`s shared by the reducers of one MapReduce
/// run: each reducer acquires a scratch, Assign()s its partition into it
/// (reusing the columnar array capacity from earlier partitions/rounds) and
/// returns it, instead of constructing a fresh Dataset per partition. At
/// most one scratch exists per concurrently running reducer.
class DatasetScratchPool {
 public:
  /// Pops a cleared scratch (or default-constructs one).
  Dataset Acquire() {
    std::unique_lock<std::mutex> lock(mu_);
    if (free_.empty()) return Dataset();
    Dataset d = std::move(free_.back());
    free_.pop_back();
    return d;
  }

  /// Clears `d` (keeping capacity) and returns it to the free list.
  void Release(Dataset d) {
    d.Clear();
    std::unique_lock<std::mutex> lock(mu_);
    free_.push_back(std::move(d));
  }

 private:
  std::mutex mu_;
  std::vector<Dataset> free_;
};

/// Configuration of a MapReduce diversity run.
struct MrOptions {
  /// Solution size.
  size_t k = 8;
  /// Core-set kernel size per partition (k' of the paper); >= k.
  size_t k_prime = 8;
  /// Number of partitions l (== number of round-1 reducers).
  size_t num_partitions = 4;
  /// Number of simulated processors executing reducers.
  size_t num_workers = 4;
  /// How the input is split.
  PartitionStrategy partition = PartitionStrategy::kRandom;
  /// Seed for partitioning (and nothing else; the algorithms are
  /// deterministic given the partition).
  uint64_t seed = 1;
  /// Theorem 7: cap delegates per cluster at
  /// max(ceil(log2 n), ceil(k / num_partitions)) instead of k-1.
  bool randomized_delegate_cap = false;
};

/// Outcome of a MapReduce run.
struct MrResult {
  /// The k selected points.
  PointSet solution;
  /// div(solution) under the configured objective.
  double diversity = 0.0;
  /// Aggregate core-set size |T| fed to the final sequential step.
  size_t coreset_size = 0;
  /// max over reducers and rounds of the points a reducer held (the
  /// observed M_L).
  size_t max_local_memory_points = 0;
  /// Number of MR rounds executed.
  size_t rounds = 0;
  /// Wall time of each round, seconds.
  std::vector<double> round_seconds;
  /// Points shuffled between rounds (sum over all rounds of the reducers'
  /// output sizes) — the communication volume a real cluster would pay.
  size_t shuffle_points = 0;
  /// Total wall time, seconds.
  double total_seconds = 0.0;
};

/// Copies round count, per-round wall times, max reducer input (M_L) and
/// total shuffle volume from a finished simulator into `result`. Shared by
/// the CPPU drivers and the AFZ baseline.
void AccumulateRoundStats(const MapReduceSimulator& sim, MrResult* result);

/// Driver for the MapReduce algorithms. Thread-safe for concurrent Run()
/// calls only through distinct instances.
class MapReduceDiversity {
 public:
  /// `metric` must outlive this object.
  MapReduceDiversity(const Metric* metric, DiversityProblem problem,
                     const MrOptions& options);

  /// 2-round algorithm (Theorems 6/7).
  MrResult Run(const PointSet& input) const;

  /// 3-round generalized-core-set algorithm (Theorem 10). Requires an
  /// injective-proxy problem.
  MrResult RunGeneralized(const PointSet& input) const;

  /// Multi-round recursion (Theorem 8): keeps compressing through rounds of
  /// composable core-sets until the aggregate has at most
  /// `local_memory_budget` points, then solves sequentially.
  MrResult RunRecursive(const PointSet& input,
                        size_t local_memory_budget) const;

 private:
  // Core-set for one partition under the configured problem family. The
  // partition is re-laid out columnar into `*scratch` (capacity reused
  // across partitions and rounds via the run's DatasetScratchPool).
  PointSet PartitionCoreset(const PointSet& part, size_t input_size,
                            Dataset* scratch) const;

  const Metric* metric_;
  DiversityProblem problem_;
  MrOptions options_;
};

}  // namespace diverse

#endif  // DIVERSE_MAPREDUCE_MR_DIVERSITY_H_
