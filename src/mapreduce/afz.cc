#include "mapreduce/afz.h"

#include <algorithm>
#include <numeric>

#include "core/coreset.h"
#include "core/sequential.h"
#include "util/check.h"
#include "util/timer.h"

namespace diverse {

namespace {

// AFZ round-1 core-set for one partition.
PointSet AfzPartitionCoreset(const PointSet& part, const Metric& metric,
                             DiversityProblem problem, size_t k,
                             size_t max_sweeps) {
  if (part.empty()) return {};  // empty reducer input (num_partitions > n)
  size_t kk = std::min(k, part.size());
  if (problem == DiversityProblem::kRemoteEdge) {
    return GmmCoreset(part, metric, kk).points;
  }
  DIVERSE_CHECK(problem == DiversityProblem::kRemoteClique);
  // Local search from an arbitrary initial set (the first k points, as the
  // construction prescribes "any" initial solution).
  std::vector<size_t> initial(kk);
  std::iota(initial.begin(), initial.end(), 0);
  std::vector<size_t> chosen =
      LocalSearchRemoteClique(part, metric, std::move(initial), max_sweeps,
                              LocalSearchScan::kRestart);
  PointSet out;
  out.reserve(chosen.size());
  for (size_t idx : chosen) out.push_back(part[idx]);
  return out;
}

}  // namespace

MrResult RunAfz(const PointSet& input, const Metric& metric,
                DiversityProblem problem, const AfzOptions& options) {
  DIVERSE_CHECK(problem == DiversityProblem::kRemoteEdge ||
                problem == DiversityProblem::kRemoteClique);
  Timer total;
  MrResult result;
  MapReduceSimulator sim(options.num_workers);

  std::vector<PointSet> parts =
      PartitionPoints(input, options.num_partitions, options.partition,
                      options.seed, &metric);

  std::vector<PointSet> coresets(parts.size());
  sim.RunRoundWithSizes(
      "afz-coreset", parts.size(),
      [&](size_t i) {
        coresets[i] = AfzPartitionCoreset(parts[i], metric, problem,
                                          options.k, options.max_sweeps);
      },
      [&](size_t i) { return parts[i].size(); },
      [&](size_t i) { return coresets[i].size(); });

  Dataset aggregate;
  PointSet solution;
  sim.RunRoundWithSizes(
      "afz-solve", 1,
      [&](size_t) {
        PointSet united;
        for (const PointSet& c : coresets) {
          united.insert(united.end(), c.begin(), c.end());
        }
        aggregate = Dataset(std::move(united));
        size_t k = std::min(options.k, aggregate.size());
        std::vector<size_t> picked =
            SolveSequential(problem, aggregate, metric, k);
        for (size_t idx : picked) solution.push_back(aggregate.point(idx));
      },
      [&](size_t) { return aggregate.size(); },
      [&](size_t) { return solution.size(); });

  result.solution = std::move(solution);
  result.diversity = EvaluateDiversity(problem, result.solution, metric);
  result.coreset_size = aggregate.size();
  AccumulateRoundStats(sim, &result);
  result.total_seconds = total.Seconds();
  return result;
}

}  // namespace diverse
