// AFZ: the state-of-the-art baseline of Table 4.
//
// Aghamolaei, Farhadi and Zarrabi-Zadeh (CCCG 2015) give composable
// core-sets for diversity maximization in general metric spaces with
// constant approximation factors (Table 2 of the paper: 3 for remote-edge,
// 6+eps for remote-clique). Their constructions differ per measure:
//   * remote-edge: GMM with core-set size k — identical to CPPU at k' = k,
//     which is why the paper calls that comparison "less interesting";
//   * remote-clique: per-partition *local search* — start from k arbitrary
//     points and swap in any outside point that increases the core-set's sum
//     of pairwise distances, to convergence. Each sweep costs O(|S_i| k^2)
//     distance evaluations and the number of sweeps is unbounded, which is
//     the superlinear behaviour Table 4 measures.
// As in the paper, no public AFZ code exists, so we reimplement it inside
// the same MapReduce simulator and with the same final sequential step as
// CPPU; only the round-1 core-set construction differs.

#ifndef DIVERSE_MAPREDUCE_AFZ_H_
#define DIVERSE_MAPREDUCE_AFZ_H_

#include "core/diversity.h"
#include "core/metric.h"
#include "core/point.h"
#include "mapreduce/mr_diversity.h"

namespace diverse {

/// Options for an AFZ run; reuses the CPPU MrOptions. AFZ's core-set size is
/// fixed at k by its construction, so options.k_prime is ignored.
struct AfzOptions {
  size_t k = 8;
  size_t num_partitions = 4;
  size_t num_workers = 4;
  PartitionStrategy partition = PartitionStrategy::kRandom;
  uint64_t seed = 1;
  /// Safety valve on accepted local-search swaps (the restart-scan search
  /// normally stops at a local optimum well before this); the baseline's
  /// cost is the experiment, but runaway instances must still terminate.
  size_t max_sweeps = 1000000;
};

/// Runs the 2-round AFZ MapReduce algorithm. Supports kRemoteEdge and
/// kRemoteClique (the two measures compared in the paper's Table 4 study).
MrResult RunAfz(const PointSet& input, const Metric& metric,
                DiversityProblem problem, const AfzOptions& options);

}  // namespace diverse

#endif  // DIVERSE_MAPREDUCE_AFZ_H_
