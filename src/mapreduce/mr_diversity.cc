#include "mapreduce/mr_diversity.h"

#include <algorithm>
#include <cmath>

#include "core/coreset.h"
#include "core/generalized_coreset.h"
#include "core/sequential.h"
#include "util/check.h"
#include "util/timer.h"

namespace diverse {

MapReduceDiversity::MapReduceDiversity(const Metric* metric,
                                       DiversityProblem problem,
                                       const MrOptions& options)
    : metric_(metric), problem_(problem), options_(options) {
  DIVERSE_CHECK(metric != nullptr);
  DIVERSE_CHECK_GE(options.k, 1u);
  DIVERSE_CHECK_GE(options.k_prime, options.k);
  DIVERSE_CHECK_GE(options.num_partitions, 1u);
  DIVERSE_CHECK_GE(options.num_workers, 1u);
}

void AccumulateRoundStats(const MapReduceSimulator& sim, MrResult* result) {
  result->rounds = sim.num_rounds();
  for (const RoundStats& r : sim.rounds()) {
    result->round_seconds.push_back(r.wall_seconds);
    result->max_local_memory_points =
        std::max(result->max_local_memory_points, r.MaxInputPoints());
    result->shuffle_points += r.TotalOutputPoints();
  }
}

PointSet MapReduceDiversity::PartitionCoreset(const PointSet& part,
                                              size_t input_size,
                                              Dataset* scratch) const {
  // Empty reducer inputs (num_partitions > n) contribute an empty core-set.
  if (part.empty()) return {};
  // Columnar re-layout into the reducer's scratch Dataset (array capacity
  // reused across partitions and rounds); the GMM sweeps inside the
  // core-set constructions then run on the batched kernels.
  scratch->Assign(part);
  const Dataset& part_data = *scratch;
  size_t k_prime = std::min(options_.k_prime, part.size());
  if (!RequiresInjectiveProxies(problem_)) {
    return GmmCoreset(part_data, *metric_, k_prime).points;
  }
  size_t delegates = options_.k - 1;
  if (options_.randomized_delegate_cap) {
    // Theorem 7: with a random partition, no part holds more than
    // Theta(max(log n, k/l)) points of any optimal solution w.h.p., so that
    // many delegates per cluster suffice. The deterministic k-1 is always
    // enough, so the cap never exceeds it.
    size_t log_n = static_cast<size_t>(
        std::ceil(std::log2(static_cast<double>(std::max<size_t>(input_size, 2)))));
    size_t k_over_l =
        (options_.k + options_.num_partitions - 1) / options_.num_partitions;
    delegates = std::min(options_.k - 1, std::max(log_n, k_over_l));
  }
  return GmmExtCoreset(part_data, *metric_, k_prime, delegates).points;
}

MrResult MapReduceDiversity::Run(const PointSet& input) const {
  Timer total;
  MrResult result;
  MapReduceSimulator sim(options_.num_workers);

  std::vector<PointSet> parts =
      PartitionPoints(input, options_.num_partitions, options_.partition,
                      options_.seed, metric_);

  // Round 1: one reducer per partition computes its composable core-set.
  DatasetScratchPool scratch_pool;
  std::vector<PointSet> coresets(parts.size());
  sim.RunRoundWithSizes(
      "coreset", parts.size(),
      [&](size_t i) {
        Dataset scratch = scratch_pool.Acquire();
        coresets[i] = PartitionCoreset(parts[i], input.size(), &scratch);
        scratch_pool.Release(std::move(scratch));
      },
      [&](size_t i) { return parts[i].size(); },
      [&](size_t i) { return coresets[i].size(); });

  // Round 2: a single reducer aggregates T = union of core-sets into one
  // columnar dataset and runs the sequential approximation algorithm on it.
  Dataset aggregate;
  PointSet solution;
  sim.RunRoundWithSizes(
      "solve", 1,
      [&](size_t) {
        PointSet united;
        for (const PointSet& c : coresets) {
          united.insert(united.end(), c.begin(), c.end());
        }
        aggregate = Dataset(std::move(united));
        size_t k = std::min(options_.k, aggregate.size());
        if (k == 0) return;  // empty input stream: empty solution
        std::vector<size_t> picked =
            SolveSequential(problem_, aggregate, *metric_, k);
        solution.reserve(picked.size());
        for (size_t idx : picked) solution.push_back(aggregate.point(idx));
      },
      [&](size_t) { return aggregate.size(); },
      [&](size_t) { return solution.size(); });

  result.solution = std::move(solution);
  result.diversity = EvaluateDiversity(problem_, result.solution, *metric_);
  result.coreset_size = aggregate.size();
  AccumulateRoundStats(sim, &result);
  result.total_seconds = total.Seconds();
  return result;
}

MrResult MapReduceDiversity::RunGeneralized(const PointSet& input) const {
  DIVERSE_CHECK(RequiresInjectiveProxies(problem_));
  Timer total;
  MrResult result;
  MapReduceSimulator sim(options_.num_workers);

  std::vector<PointSet> parts =
      PartitionPoints(input, options_.num_partitions, options_.partition,
                      options_.seed, metric_);

  // Round 1: GMM-GEN per partition; keep each kernel's range so the
  // instantiation radius r_T = max_i r_{T_i} is known.
  DatasetScratchPool scratch_pool;
  std::vector<GeneralizedCoreset> gens(parts.size());
  std::vector<double> ranges(parts.size(), 0.0);
  sim.RunRoundWithSizes(
      "gen-coreset", parts.size(),
      [&](size_t i) {
        if (parts[i].empty()) return;  // empty core-set, range stays 0
        size_t k_prime = std::min(options_.k_prime, parts[i].size());
        Dataset scratch = scratch_pool.Acquire();
        scratch.Assign(parts[i]);
        gens[i] = GmmGenCoreset(scratch, *metric_, options_.k, k_prime,
                                &ranges[i]);
        scratch_pool.Release(std::move(scratch));
      },
      [&](size_t i) { return parts[i].size(); },
      [&](size_t i) { return gens[i].size(); });
  double r_t = *std::max_element(ranges.begin(), ranges.end());

  // Round 2: one reducer merges the generalized core-sets and picks the
  // coherent subset T-hat of expanded size k (Fact 2).
  GeneralizedCoreset selected;
  size_t merged_size = 0;
  sim.RunRoundWithSizes(
      "gen-solve", 1,
      [&](size_t) {
        GeneralizedCoreset merged = GeneralizedCoreset::Merge(gens);
        merged_size = merged.size();
        size_t k = std::min(options_.k, merged.ExpandedSize());
        if (k == 0) return;  // empty input stream: empty selection
        selected = SolveSequentialGeneralized(problem_, merged, *metric_, k);
      },
      [&](size_t) { return merged_size; },
      [&](size_t) { return selected.size(); });

  // Round 3: each partition instantiates the selected pairs whose kernel
  // point it owns: m_p distinct delegates within r_T of p. Partitions are
  // disjoint, so per-partition instantiations are globally disjoint.
  std::vector<GeneralizedCoreset> per_part(parts.size());
  {
    std::vector<bool> assigned(selected.size(), false);
    for (size_t i = 0; i < parts.size(); ++i) {
      for (size_t e = 0; e < selected.size(); ++e) {
        if (assigned[e]) continue;
        const Point& p = selected.entries()[e].point;
        for (const Point& q : parts[i]) {
          if (q == p) {
            per_part[i].Add(p, selected.entries()[e].multiplicity);
            assigned[e] = true;
            break;
          }
        }
      }
    }
    for (size_t e = 0; e < selected.size(); ++e) DIVERSE_CHECK(assigned[e]);
  }
  std::vector<PointSet> instantiated(parts.size());
  sim.RunRoundWithSizes(
      "instantiate", parts.size(),
      [&](size_t i) {
        if (per_part[i].size() == 0) return;
        auto inst = Instantiate(per_part[i], parts[i], *metric_, r_t);
        DIVERSE_CHECK(inst.has_value());
        instantiated[i] = std::move(*inst);
      },
      [&](size_t i) { return parts[i].size(); },
      [&](size_t i) { return instantiated[i].size(); });

  for (PointSet& inst : instantiated) {
    result.solution.insert(result.solution.end(), inst.begin(), inst.end());
  }
  result.diversity = EvaluateDiversity(problem_, result.solution, *metric_);
  result.coreset_size = merged_size;
  AccumulateRoundStats(sim, &result);
  result.total_seconds = total.Seconds();
  return result;
}

MrResult MapReduceDiversity::RunRecursive(const PointSet& input,
                                          size_t local_memory_budget) const {
  DIVERSE_CHECK_GE(local_memory_budget, options_.k_prime);
  Timer total;
  MrResult result;
  MapReduceSimulator sim(options_.num_workers);

  PointSet current = input;
  DatasetScratchPool scratch_pool;
  int level = 0;
  // Compress through core-set rounds until one reducer can hold everything.
  while (current.size() > local_memory_budget) {
    size_t parts_needed =
        (current.size() + local_memory_budget - 1) / local_memory_budget;
    std::vector<PointSet> parts =
        PartitionPoints(current, parts_needed, options_.partition,
                        options_.seed + static_cast<uint64_t>(level), metric_);
    std::vector<PointSet> coresets(parts.size());
    sim.RunRoundWithSizes(
        "coreset-l" + std::to_string(level), parts.size(),
        [&](size_t i) {
          Dataset scratch = scratch_pool.Acquire();
          coresets[i] = PartitionCoreset(parts[i], input.size(), &scratch);
          scratch_pool.Release(std::move(scratch));
        },
        [&](size_t i) { return parts[i].size(); },
        [&](size_t i) { return coresets[i].size(); });
    PointSet next;
    for (PointSet& c : coresets) {
      next.insert(next.end(), c.begin(), c.end());
    }
    // Guard against non-progress (budget too tight for k' per part).
    DIVERSE_CHECK_LT(next.size(), current.size());
    current = std::move(next);
    ++level;
  }

  PointSet solution;
  sim.RunRoundWithSizes(
      "solve", 1,
      [&](size_t) {
        size_t k = std::min(options_.k, current.size());
        if (k == 0) return;  // empty input stream: empty solution
        Dataset scratch = scratch_pool.Acquire();
        scratch.Assign(current);
        std::vector<size_t> picked =
            SolveSequential(problem_, scratch, *metric_, k);
        for (size_t idx : picked) solution.push_back(current[idx]);
        scratch_pool.Release(std::move(scratch));
      },
      [&](size_t) { return current.size(); },
      [&](size_t) { return solution.size(); });

  result.solution = std::move(solution);
  result.diversity = EvaluateDiversity(problem_, result.solution, *metric_);
  result.coreset_size = current.size();
  AccumulateRoundStats(sim, &result);
  result.total_seconds = total.Seconds();
  return result;
}

}  // namespace diverse
