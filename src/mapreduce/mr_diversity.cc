#include "mapreduce/mr_diversity.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <string>
#include <utility>

#include "comm/serialize.h"
#include "core/generalized_coreset.h"
#include "core/sequential.h"
#include "util/check.h"
#include "util/timer.h"

namespace diverse {

namespace {

bool PointIsFinite(const Point& p) {
  const std::vector<float>& vals =
      p.is_sparse() ? p.sparse_values() : p.dense_values();
  for (float v : vals) {
    if (!std::isfinite(v)) return false;
  }
  return true;
}

// Deterministic single-coordinate corruption (NaN) used to simulate
// wrong-output and corrupted-partition faults. The validators below are the
// detection side of the same coin.
Point GarblePoint(const Point& p, uint64_t sub_seed) {
  const float bad = std::numeric_limits<float>::quiet_NaN();
  if (p.is_sparse()) {
    std::vector<uint32_t> idx = p.sparse_indices();
    std::vector<float> val = p.sparse_values();
    if (val.empty()) return p;
    val[sub_seed % val.size()] = bad;
    return Point::Sparse(std::move(idx), std::move(val), p.dim());
  }
  std::vector<float> val = p.dense_values();
  if (val.empty()) return p;
  val[sub_seed % val.size()] = bad;
  return Point::Dense(std::move(val));
}

void GarbleOne(PointSet* pts, uint64_t sub_seed) {
  if (pts->empty()) return;
  size_t t = sub_seed % pts->size();
  (*pts)[t] = GarblePoint((*pts)[t], sub_seed);
}

Status ValidateFinitePoints(const char* what, const std::string& round,
                            size_t task, const PointSet& pts) {
  for (size_t j = 0; j < pts.size(); ++j) {
    if (!PointIsFinite(pts[j])) {
      return DataLossError(std::string(what) +
                           " contains a non-finite coordinate (round '" +
                           round + "', task " + std::to_string(task) +
                           ", point " + std::to_string(j) + ")");
    }
  }
  return OkStatus();
}

// A core-set of a non-empty partition is non-empty and every coordinate is
// finite. (No upper size bound: GMM-EXT may emit repeated entries when the
// partition holds duplicate points, so the core-set can exceed the
// partition's point count.) Violations mean the attempt's output cannot be
// trusted and the task must re-execute.
Status ValidateCoresetOutput(const std::string& round, size_t task,
                             const PointSet& coreset, size_t part_size) {
  if (coreset.empty() != (part_size == 0)) {
    return DataLossError("core-set output size " +
                         std::to_string(coreset.size()) +
                         " inconsistent with partition size " +
                         std::to_string(part_size) + " (round '" + round +
                         "', task " + std::to_string(task) + ")");
  }
  return ValidateFinitePoints("core-set output", round, task, coreset);
}

Status ValidateGenEntries(const char* what, const std::string& round,
                          size_t task, const GeneralizedCoreset& gen) {
  for (size_t e = 0; e < gen.entries().size(); ++e) {
    const WeightedPoint& wp = gen.entries()[e];
    if (wp.multiplicity == 0) {
      return DataLossError(std::string(what) +
                           " has a zero multiplicity (round '" + round +
                           "', task " + std::to_string(task) + ", entry " +
                           std::to_string(e) + ")");
    }
    if (!PointIsFinite(wp.point)) {
      return DataLossError(std::string(what) +
                           " contains a non-finite coordinate (round '" +
                           round + "', task " + std::to_string(task) +
                           ", entry " + std::to_string(e) + ")");
    }
  }
  return OkStatus();
}

GeneralizedCoreset GarbleGen(const GeneralizedCoreset& gen,
                             uint64_t sub_seed) {
  GeneralizedCoreset out;
  if (gen.size() == 0) return out;
  size_t target = sub_seed % gen.size();
  for (size_t e = 0; e < gen.entries().size(); ++e) {
    const WeightedPoint& wp = gen.entries()[e];
    out.Add(e == target ? GarblePoint(wp.point, sub_seed) : wp.point,
            wp.multiplicity);
  }
  return out;
}

// The engine-call identity of one reducer attempt. Transport faults ride
// along so the engine (not the executor) inflicts them — the executor
// already counted the probe; data faults stay in the reducer body.
// `cache_key` is the partition's round-level content stamp (0 = unkeyed).
TaskEnvelope MakeEnvelope(const std::string& round, const MrTaskContext& ctx,
                          uint64_t cache_key = 0) {
  TaskEnvelope env;
  env.round = round;
  env.task = ctx.task;
  env.attempt = ctx.attempt;
  env.cache_key = cache_key;
  if (IsTransportFault(ctx.fault)) {
    env.fault = ctx.fault;
    env.fault_param = ctx.fault_param;
  }
  return env;
}

// Per-partition content stamps, computed ONCE per driver run rather than
// per attempt: every retry and speculative re-launch of a task reuses the
// same key, so a re-ship after a crash (or a second solve over the same
// corpus) hits the worker's partition cache instead of re-fingerprinting
// and re-serializing. Empty when the engine has no cache to feed —
// loopback runs pay nothing for the machinery.
std::vector<uint64_t> PartitionCacheKeys(const CommunicationEngine& engine,
                                         const std::vector<PointSet>& parts) {
  if (!engine.WantsPartitionCacheKeys()) return {};
  std::vector<uint64_t> keys(parts.size(), 0);
  for (size_t i = 0; i < parts.size(); ++i) {
    if (!parts[i].empty()) keys[i] = FingerprintPoints(parts[i]);
  }
  return keys;
}

Status AnnotateRoundFailure(const std::string& round_name,
                            const Status& error) {
  return Status(error.code(), "round '" + round_name +
                                  "' permanently failed: " + error.message());
}

// Folds the permanently-failed tasks of a partition-level round into the
// run's degradation certificate: the failed partitions are dropped and the
// certificate records how much of the input the remaining guarantee still
// covers. Returns the round error when degradation is disallowed or no
// input point survives.
Status ApplyRoundDegradation(const std::string& round_name,
                             const std::vector<PointSet>& parts,
                             const RoundOutcome& outcome, bool allow_degraded,
                             std::optional<DegradedResult>* degraded) {
  if (outcome.ok()) return OkStatus();
  if (!allow_degraded) {
    return Status(outcome.first_error.code(),
                  "round '" + round_name + "' permanently failed " +
                      std::to_string(outcome.failed_tasks.size()) +
                      " task(s) and degradation is disabled: " +
                      outcome.first_error.message());
  }
  size_t total = 0;
  size_t lost = 0;
  for (const PointSet& p : parts) total += p.size();
  for (size_t f : outcome.failed_tasks) lost += parts[f].size();
  if (total > 0 && lost >= total) {
    return DataLossError("round '" + round_name +
                         "': every input point was in a permanently failed "
                         "partition; last error: " +
                         outcome.first_error.message());
  }
  if (!degraded->has_value()) degraded->emplace();
  DegradedResult& d = **degraded;
  for (size_t f : outcome.failed_tasks) d.failed_partitions.push_back(f);
  d.total_points += total;
  d.surviving_points += total - lost;
  if (total > 0) {
    d.surviving_fraction *= static_cast<double>(total - lost) /
                            static_cast<double>(total);
  }
  return OkStatus();
}

}  // namespace

MapReduceDiversity::MapReduceDiversity(const Metric* metric,
                                       DiversityProblem problem,
                                       const MrOptions& options)
    : metric_(metric), problem_(problem), options_(options) {
  DIVERSE_CHECK(metric != nullptr);
  DIVERSE_CHECK_GE(options.k, 1u);
  DIVERSE_CHECK_GE(options.k_prime, options.k);
  DIVERSE_CHECK_GE(options.num_partitions, 1u);
  DIVERSE_CHECK_GE(options.num_workers, 1u);
}

void AccumulateRoundStats(const MapReduceSimulator& sim, MrResult* result) {
  result->rounds = sim.num_rounds();
  for (const RoundStats& r : sim.rounds()) {
    result->round_seconds.push_back(r.wall_seconds);
    result->max_local_memory_points =
        std::max(result->max_local_memory_points, r.MaxInputPoints());
    result->shuffle_points += r.TotalOutputPoints();
    result->task_attempts += r.attempts;
    result->task_retries += r.retries;
    result->task_timeouts += r.timeouts;
    result->faults_injected += r.faults_injected;
  }
}

CoresetSpec MapReduceDiversity::MakeCoresetSpec(size_t part_size,
                                                size_t input_size) const {
  CoresetSpec spec;
  spec.k_prime = std::min(options_.k_prime, std::max<size_t>(part_size, 1));
  spec.extended = RequiresInjectiveProxies(problem_);
  if (!spec.extended) return spec;
  spec.delegates = options_.k - 1;
  if (options_.randomized_delegate_cap) {
    // Theorem 7: with a random partition, no part holds more than
    // Theta(max(log n, k/l)) points of any optimal solution w.h.p., so that
    // many delegates per cluster suffice. The deterministic k-1 is always
    // enough, so the cap never exceeds it.
    size_t log_n = static_cast<size_t>(
        std::ceil(std::log2(static_cast<double>(std::max<size_t>(input_size, 2)))));
    size_t k_over_l =
        (options_.k + options_.num_partitions - 1) / options_.num_partitions;
    spec.delegates = std::min(options_.k - 1, std::max(log_n, k_over_l));
  }
  return spec;
}

FallibleRoundOptions MapReduceDiversity::ExecPolicy() const {
  FallibleRoundOptions exec;
  exec.max_attempts = options_.max_retries + 1;
  exec.task_timeout_ms = options_.task_timeout_ms;
  exec.faults = options_.faults;
  exec.clock = options_.clock;
  return exec;
}

Status MapReduceDiversity::CoresetRound(
    MapReduceSimulator* sim, CommunicationEngine* engine,
    const std::string& round_name, const std::vector<PointSet>& parts,
    size_t input_size, std::vector<PointSet>* coresets,
    std::optional<DegradedResult>* degraded) const {
  coresets->assign(parts.size(), PointSet{});
  const std::vector<uint64_t> part_keys = PartitionCacheKeys(*engine, parts);
  RoundOutcome outcome = sim->RunFallibleRound(
      round_name, parts.size(),
      [&](const MrTaskContext& ctx, std::function<void()>* commit) -> Status {
        const size_t i = ctx.task;
        // A corrupted-partition fault scrambles this attempt's local copy of
        // the input; the pristine partition is re-read on retry, which is
        // why detection (below) plus re-execution recovers exactly.
        const PointSet* in = &parts[i];
        PointSet corrupted;
        if (ctx.fault == FaultKind::kCorruptPartition && !parts[i].empty()) {
          corrupted = parts[i];
          GarbleOne(&corrupted, ctx.fault_param);
          in = &corrupted;
        }
        DIVERSE_RETURN_IF_ERROR(
            ValidateFinitePoints("input partition", round_name, i, *in));
        StatusOr<PointSet> cs_or = engine->Coreset(
            MakeEnvelope(round_name, ctx,
                         part_keys.empty() ? 0 : part_keys[i]),
            *in, MakeCoresetSpec(in->size(), input_size));
        if (!cs_or.ok()) return cs_or.status();
        PointSet cs = std::move(*cs_or);
        if (ctx.fault == FaultKind::kEmptyOutput) cs.clear();
        if (ctx.fault == FaultKind::kWrongOutput) GarbleOne(&cs, ctx.fault_param);
        DIVERSE_RETURN_IF_ERROR(
            ValidateCoresetOutput(round_name, i, cs, parts[i].size()));
        *commit = [coresets, i, out = std::move(cs)]() mutable {
          (*coresets)[i] = std::move(out);
        };
        return OkStatus();
      },
      ExecPolicy(), [&](size_t i) { return parts[i].size(); },
      [&](size_t i) { return (*coresets)[i].size(); });
  return ApplyRoundDegradation(round_name, parts, outcome,
                               options_.allow_degraded, degraded);
}

Status MapReduceDiversity::TreeReduce(MapReduceSimulator* sim,
                                      CommunicationEngine* engine,
                                      std::vector<PointSet>* coresets) const {
  std::vector<PointSet> layer = std::move(*coresets);
  int level = 0;
  while (layer.size() > 1) {
    const size_t pairs = layer.size() / 2;
    std::vector<PointSet> next((layer.size() + 1) / 2);
    if (layer.size() % 2 == 1) next.back() = std::move(layer.back());
    const std::string round_name = "reduce-l" + std::to_string(level);
    RoundOutcome outcome = sim->RunFallibleRound(
        round_name, pairs,
        [&](const MrTaskContext& ctx,
            std::function<void()>* commit) -> Status {
          const size_t i = ctx.task;
          StatusOr<PointSet> merged = engine->MergeCoresets(
              MakeEnvelope(round_name, ctx), layer[2 * i], layer[2 * i + 1]);
          if (!merged.ok()) return merged.status();
          PointSet out = std::move(*merged);
          if (ctx.fault == FaultKind::kEmptyOutput) out.clear();
          // A merge holds no pristine partition to corrupt, so both data
          // faults garble the output; validation catches either.
          if (ctx.fault == FaultKind::kWrongOutput ||
              ctx.fault == FaultKind::kCorruptPartition) {
            GarbleOne(&out, ctx.fault_param);
          }
          const size_t want = layer[2 * i].size() + layer[2 * i + 1].size();
          if (out.size() != want) {
            return DataLossError(
                "merge produced " + std::to_string(out.size()) + " of " +
                std::to_string(want) + " points (round '" + round_name +
                "', task " + std::to_string(i) + ")");
          }
          DIVERSE_RETURN_IF_ERROR(
              ValidateFinitePoints("merged core-set", round_name, i, out));
          *commit = [&next, i, o = std::move(out)]() mutable {
            next[i] = std::move(o);
          };
          return OkStatus();
        },
        ExecPolicy(),
        [&](size_t i) { return layer[2 * i].size() + layer[2 * i + 1].size(); },
        [&](size_t i) { return next[i].size(); });
    if (!outcome.ok()) {
      return AnnotateRoundFailure(round_name, outcome.first_error);
    }
    layer = std::move(next);
    ++level;
  }
  *coresets = std::move(layer);
  return OkStatus();
}

StatusOr<MrResult> MapReduceDiversity::TryRun(const PointSet& input) const {
  Timer total;
  MrResult result;
  MapReduceSimulator sim(options_.num_workers);
  LoopbackEngine fallback(metric_, problem_);
  CommunicationEngine* engine =
      options_.engine != nullptr ? options_.engine : &fallback;

  std::vector<PointSet> parts =
      PartitionPoints(input, options_.num_partitions, options_.partition,
                      options_.seed, metric_);

  // Round 1: one reducer per partition computes its composable core-set.
  // Permanently failed partitions are dropped here (their core-set slot
  // stays empty) and accounted in `degraded`.
  std::vector<PointSet> coresets;
  std::optional<DegradedResult> degraded;
  DIVERSE_RETURN_IF_ERROR(CoresetRound(&sim, engine, "coreset", parts,
                                       input.size(), &coresets, &degraded));

  // Optional reduce rounds: collapse the core-set list through a binary
  // merge tree. Order-preserving concatenation is associative, so the lone
  // survivor equals the inline union below and the solve is unchanged.
  if (options_.tree_reduce) {
    DIVERSE_RETURN_IF_ERROR(TreeReduce(&sim, engine, &coresets));
  }

  // Final round: a single reducer aggregates T = union of (surviving)
  // core-sets and runs the sequential approximation on it. With one reducer
  // there is nothing to degrade to: permanent failure is fatal.
  size_t agg_input = 0;
  for (const PointSet& c : coresets) agg_input += c.size();
  size_t coreset_size = 0;
  PointSet solution;
  RoundOutcome solve = sim.RunFallibleRound(
      "solve", 1,
      [&](const MrTaskContext& ctx, std::function<void()>* commit) -> Status {
        PointSet united;
        united.reserve(agg_input);
        for (const PointSet& c : coresets) {
          united.insert(united.end(), c.begin(), c.end());
        }
        if (ctx.fault == FaultKind::kCorruptPartition) {
          GarbleOne(&united, ctx.fault_param);
        }
        DIVERSE_RETURN_IF_ERROR(
            ValidateFinitePoints("aggregated core-set", "solve", 0, united));
        const size_t k = std::min(options_.k, united.size());
        const size_t agg_size = united.size();
        StatusOr<PointSet> sol_or =
            engine->Solve(MakeEnvelope("solve", ctx), united, options_.k);
        if (!sol_or.ok()) return sol_or.status();
        PointSet sol = std::move(*sol_or);
        if (ctx.fault == FaultKind::kEmptyOutput) sol.clear();
        if (ctx.fault == FaultKind::kWrongOutput) GarbleOne(&sol, ctx.fault_param);
        if (sol.size() != k) {
          return DataLossError("solve produced " + std::to_string(sol.size()) +
                               " of " + std::to_string(k) +
                               " requested points");
        }
        DIVERSE_RETURN_IF_ERROR(
            ValidateFinitePoints("solution", "solve", 0, sol));
        *commit = [&, agg_size, out = std::move(sol)]() mutable {
          coreset_size = agg_size;
          solution = std::move(out);
        };
        return OkStatus();
      },
      ExecPolicy(), [&](size_t) { return agg_input; },
      [&](size_t) { return solution.size(); });
  if (!solve.ok()) return AnnotateRoundFailure("solve", solve.first_error);

  result.solution = std::move(solution);
  result.diversity = EvaluateDiversity(problem_, result.solution, *metric_);
  result.coreset_size = coreset_size;
  if (degraded.has_value()) {
    degraded->approx_factor = 2.0 * SequentialAlpha(problem_);
    result.degraded = std::move(degraded);
  }
  AccumulateRoundStats(sim, &result);
  result.total_seconds = total.Seconds();
  return result;
}

StatusOr<MrResult> MapReduceDiversity::TryRunGeneralized(
    const PointSet& input) const {
  DIVERSE_CHECK(RequiresInjectiveProxies(problem_));
  Timer total;
  MrResult result;
  MapReduceSimulator sim(options_.num_workers);
  LoopbackEngine fallback(metric_, problem_);
  CommunicationEngine* engine =
      options_.engine != nullptr ? options_.engine : &fallback;

  std::vector<PointSet> parts =
      PartitionPoints(input, options_.num_partitions, options_.partition,
                      options_.seed, metric_);

  // Round 1: GMM-GEN per partition; keep each kernel's range so the
  // instantiation radius r_T = max_i r_{T_i} is known. Failed partitions are
  // dropped (empty generalized core-set, range 0) and excluded from round 3.
  // One fingerprint pass serves both partition-shipping rounds (1 and 3):
  // the instantiate round's by-ref requests hit the partitions the
  // gen-coreset round already shipped into the worker caches.
  const std::vector<uint64_t> part_keys = PartitionCacheKeys(*engine, parts);
  std::vector<GeneralizedCoreset> gens(parts.size());
  std::vector<double> ranges(parts.size(), 0.0);
  RoundOutcome gen_round = sim.RunFallibleRound(
      "gen-coreset", parts.size(),
      [&](const MrTaskContext& ctx, std::function<void()>* commit) -> Status {
        const size_t i = ctx.task;
        if (parts[i].empty()) {
          *commit = [] {};  // empty core-set, range stays 0
          return OkStatus();
        }
        const PointSet* in = &parts[i];
        PointSet corrupted;
        if (ctx.fault == FaultKind::kCorruptPartition) {
          corrupted = parts[i];
          GarbleOne(&corrupted, ctx.fault_param);
          in = &corrupted;
        }
        DIVERSE_RETURN_IF_ERROR(
            ValidateFinitePoints("input partition", "gen-coreset", i, *in));
        size_t k_prime = std::min(options_.k_prime, in->size());
        StatusOr<GenCoresetResult> gen_or = engine->GenCoreset(
            MakeEnvelope("gen-coreset", ctx,
                         part_keys.empty() ? 0 : part_keys[i]),
            *in, options_.k, k_prime);
        if (!gen_or.ok()) return gen_or.status();
        GeneralizedCoreset gen = std::move(gen_or->gen);
        double range = gen_or->range;
        if (ctx.fault == FaultKind::kEmptyOutput) {
          gen = GeneralizedCoreset();
          range = 0.0;
        }
        if (ctx.fault == FaultKind::kWrongOutput) {
          gen = GarbleGen(gen, ctx.fault_param);
        }
        if (gen.size() == 0) {
          return DataLossError(
              "generalized core-set is empty for a non-empty partition "
              "(round 'gen-coreset', task " +
              std::to_string(i) + ")");
        }
        if (!std::isfinite(range) || range < 0.0) {
          return DataLossError("non-finite kernel range (round 'gen-coreset', "
                               "task " +
                               std::to_string(i) + ")");
        }
        DIVERSE_RETURN_IF_ERROR(ValidateGenEntries(
            "generalized core-set output", "gen-coreset", i, gen));
        *commit = [&gens, &ranges, i, out = std::move(gen), range]() mutable {
          gens[i] = std::move(out);
          ranges[i] = range;
        };
        return OkStatus();
      },
      ExecPolicy(), [&](size_t i) { return parts[i].size(); },
      [&](size_t i) { return gens[i].size(); });
  std::optional<DegradedResult> degraded;
  DIVERSE_RETURN_IF_ERROR(ApplyRoundDegradation(
      "gen-coreset", parts, gen_round, options_.allow_degraded, &degraded));
  std::vector<bool> part_failed(parts.size(), false);
  for (size_t f : gen_round.failed_tasks) part_failed[f] = true;
  double r_t = *std::max_element(ranges.begin(), ranges.end());

  // Round 2: one reducer merges the generalized core-sets and picks the
  // coherent subset T-hat of expanded size k (Fact 2). Single reducer:
  // permanent failure is fatal.
  GeneralizedCoreset selected;
  size_t merged_size = 0;
  for (const GeneralizedCoreset& g : gens) merged_size += g.size();
  RoundOutcome gsolve = sim.RunFallibleRound(
      "gen-solve", 1,
      [&](const MrTaskContext& ctx, std::function<void()>* commit) -> Status {
        GeneralizedCoreset merged = GeneralizedCoreset::Merge(gens);
        if (ctx.fault == FaultKind::kCorruptPartition) {
          merged = GarbleGen(merged, ctx.fault_param);
        }
        DIVERSE_RETURN_IF_ERROR(ValidateGenEntries(
            "merged generalized core-set", "gen-solve", 0, merged));
        const size_t k = std::min(options_.k, merged.ExpandedSize());
        StatusOr<GeneralizedCoreset> sel_or = engine->GenSolve(
            MakeEnvelope("gen-solve", ctx), merged, options_.k);
        if (!sel_or.ok()) return sel_or.status();
        GeneralizedCoreset sel = std::move(*sel_or);
        if (ctx.fault == FaultKind::kEmptyOutput) sel = GeneralizedCoreset();
        if (ctx.fault == FaultKind::kWrongOutput) {
          sel = GarbleGen(sel, ctx.fault_param);
        }
        if (sel.ExpandedSize() != k) {
          return DataLossError(
              "gen-solve selected expanded size " +
              std::to_string(sel.ExpandedSize()) + " of " + std::to_string(k) +
              " requested");
        }
        DIVERSE_RETURN_IF_ERROR(
            ValidateGenEntries("selected subset", "gen-solve", 0, sel));
        *commit = [&selected, out = std::move(sel)]() mutable {
          selected = std::move(out);
        };
        return OkStatus();
      },
      ExecPolicy(), [&](size_t) { return merged_size; },
      [&](size_t) { return selected.size(); });
  if (!gsolve.ok()) return AnnotateRoundFailure("gen-solve", gsolve.first_error);

  // Round 3: each surviving partition instantiates the selected pairs whose
  // kernel point it owns: m_p distinct delegates within r_T of p. Partitions
  // are disjoint, so per-partition instantiations are globally disjoint.
  // Every selected kernel point came from a surviving partition's core-set,
  // so skipping failed partitions still assigns every entry.
  std::vector<GeneralizedCoreset> per_part(parts.size());
  {
    std::vector<bool> assigned(selected.size(), false);
    for (size_t i = 0; i < parts.size(); ++i) {
      if (part_failed[i]) continue;
      for (size_t e = 0; e < selected.size(); ++e) {
        if (assigned[e]) continue;
        const Point& p = selected.entries()[e].point;
        for (const Point& q : parts[i]) {
          if (q == p) {
            per_part[i].Add(p, selected.entries()[e].multiplicity);
            assigned[e] = true;
            break;
          }
        }
      }
    }
    for (size_t e = 0; e < selected.size(); ++e) DIVERSE_CHECK(assigned[e]);
  }
  std::vector<PointSet> instantiated(parts.size());
  RoundOutcome inst_round = sim.RunFallibleRound(
      "instantiate", parts.size(),
      [&](const MrTaskContext& ctx, std::function<void()>* commit) -> Status {
        const size_t i = ctx.task;
        if (per_part[i].size() == 0) {
          *commit = [] {};
          return OkStatus();
        }
        const PointSet* in = &parts[i];
        PointSet corrupted;
        if (ctx.fault == FaultKind::kCorruptPartition) {
          corrupted = parts[i];
          GarbleOne(&corrupted, ctx.fault_param);
          in = &corrupted;
        }
        DIVERSE_RETURN_IF_ERROR(
            ValidateFinitePoints("input partition", "instantiate", i, *in));
        StatusOr<PointSet> inst_or = engine->Instantiate(
            MakeEnvelope("instantiate", ctx,
                         part_keys.empty() ? 0 : part_keys[i]),
            per_part[i], *in, r_t);
        if (!inst_or.ok()) return inst_or.status();
        PointSet inst = std::move(*inst_or);
        if (ctx.fault == FaultKind::kEmptyOutput) inst.clear();
        if (ctx.fault == FaultKind::kWrongOutput) {
          GarbleOne(&inst, ctx.fault_param);
        }
        if (inst.size() != per_part[i].ExpandedSize()) {
          return DataLossError(
              "instantiation produced " + std::to_string(inst.size()) +
              " of " + std::to_string(per_part[i].ExpandedSize()) +
              " delegates (round 'instantiate', task " + std::to_string(i) +
              ")");
        }
        DIVERSE_RETURN_IF_ERROR(ValidateFinitePoints(
            "instantiated delegates", "instantiate", i, inst));
        *commit = [&instantiated, i, out = std::move(inst)]() mutable {
          instantiated[i] = std::move(out);
        };
        return OkStatus();
      },
      ExecPolicy(), [&](size_t i) { return parts[i].size(); },
      [&](size_t i) { return instantiated[i].size(); });
  // Losing an instantiation loses selected solution points outright — the
  // result would silently be smaller than k, so this round never degrades.
  if (!inst_round.ok()) {
    return AnnotateRoundFailure("instantiate", inst_round.first_error);
  }

  for (PointSet& inst : instantiated) {
    result.solution.insert(result.solution.end(), inst.begin(), inst.end());
  }
  result.diversity = EvaluateDiversity(problem_, result.solution, *metric_);
  result.coreset_size = merged_size;
  if (degraded.has_value()) {
    degraded->approx_factor = 2.0 * SequentialAlpha(problem_);
    result.degraded = std::move(degraded);
  }
  AccumulateRoundStats(sim, &result);
  result.total_seconds = total.Seconds();
  return result;
}

StatusOr<MrResult> MapReduceDiversity::TryRunRecursive(
    const PointSet& input, size_t local_memory_budget) const {
  DIVERSE_CHECK_GE(local_memory_budget, options_.k_prime);
  Timer total;
  MrResult result;
  MapReduceSimulator sim(options_.num_workers);
  LoopbackEngine fallback(metric_, problem_);
  CommunicationEngine* engine =
      options_.engine != nullptr ? options_.engine : &fallback;

  PointSet current = input;
  std::optional<DegradedResult> degraded;
  int level = 0;
  // Compress through core-set rounds until one reducer can hold everything.
  // Degradation applies at every level; the certificate's survival fraction
  // is the product over levels.
  while (current.size() > local_memory_budget) {
    size_t parts_needed =
        (current.size() + local_memory_budget - 1) / local_memory_budget;
    std::vector<PointSet> parts =
        PartitionPoints(current, parts_needed, options_.partition,
                        options_.seed + static_cast<uint64_t>(level), metric_);
    std::vector<PointSet> coresets;
    DIVERSE_RETURN_IF_ERROR(
        CoresetRound(&sim, engine, "coreset-l" + std::to_string(level), parts,
                     input.size(), &coresets, &degraded));
    PointSet next;
    for (PointSet& c : coresets) {
      next.insert(next.end(), c.begin(), c.end());
    }
    // Guard against non-progress (budget too tight for k' per part).
    if (next.size() >= current.size()) {
      return FailedPreconditionError(
          "recursive compression made no progress at level " +
          std::to_string(level) + " (" + std::to_string(next.size()) + " of " +
          std::to_string(current.size()) +
          " points remain); raise the local memory budget");
    }
    current = std::move(next);
    ++level;
  }

  PointSet solution;
  RoundOutcome solve = sim.RunFallibleRound(
      "solve", 1,
      [&](const MrTaskContext& ctx, std::function<void()>* commit) -> Status {
        PointSet local = current;
        if (ctx.fault == FaultKind::kCorruptPartition) {
          GarbleOne(&local, ctx.fault_param);
        }
        DIVERSE_RETURN_IF_ERROR(
            ValidateFinitePoints("aggregated core-set", "solve", 0, local));
        const size_t k = std::min(options_.k, local.size());
        StatusOr<PointSet> sol_or =
            engine->Solve(MakeEnvelope("solve", ctx), local, options_.k);
        if (!sol_or.ok()) return sol_or.status();
        PointSet sol = std::move(*sol_or);
        if (ctx.fault == FaultKind::kEmptyOutput) sol.clear();
        if (ctx.fault == FaultKind::kWrongOutput) GarbleOne(&sol, ctx.fault_param);
        if (sol.size() != k) {
          return DataLossError("solve produced " + std::to_string(sol.size()) +
                               " of " + std::to_string(k) +
                               " requested points");
        }
        DIVERSE_RETURN_IF_ERROR(
            ValidateFinitePoints("solution", "solve", 0, sol));
        *commit = [&solution, out = std::move(sol)]() mutable {
          solution = std::move(out);
        };
        return OkStatus();
      },
      ExecPolicy(), [&](size_t) { return current.size(); },
      [&](size_t) { return solution.size(); });
  if (!solve.ok()) return AnnotateRoundFailure("solve", solve.first_error);

  result.solution = std::move(solution);
  result.diversity = EvaluateDiversity(problem_, result.solution, *metric_);
  result.coreset_size = current.size();
  if (degraded.has_value()) {
    degraded->approx_factor = 2.0 * SequentialAlpha(problem_);
    result.degraded = std::move(degraded);
  }
  AccumulateRoundStats(sim, &result);
  result.total_seconds = total.Seconds();
  return result;
}

namespace {

MrResult UnwrapOrDie(StatusOr<MrResult> result) {
  if (!result.ok()) {
    std::fprintf(stderr, "MapReduce run failed: %s\n",
                 result.status().ToString().c_str());
  }
  DIVERSE_CHECK(result.ok());
  return std::move(*result);
}

}  // namespace

MrResult MapReduceDiversity::Run(const PointSet& input) const {
  return UnwrapOrDie(TryRun(input));
}

MrResult MapReduceDiversity::RunGeneralized(const PointSet& input) const {
  return UnwrapOrDie(TryRunGeneralized(input));
}

MrResult MapReduceDiversity::RunRecursive(const PointSet& input,
                                          size_t local_memory_budget) const {
  return UnwrapOrDie(TryRunRecursive(input, local_memory_budget));
}

}  // namespace diverse
